package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the lock-set abstract interpreter shared by the lockcheck
// and atomicmix analyzers. It walks one function body statement by
// statement, tracking which sync.Mutex/sync.RWMutex instances are held at
// each program point. Locks are identified by the printed form of their
// receiver expression ("t.mu", "c.mu"): two spellings of the same lock
// unify, two locks spelled identically on different objects do not occur
// in practice because the walk is per-function and receiver names are
// stable within one body.
//
// The lattice is a map from lock key to the strongest hold proven on every
// path: branches merge by intersection (a lock is held after an if only
// when both arms hold it), paths that terminate (return, panic, os.Exit,
// break/continue) drop out of the merge, and loop bodies contribute to the
// post-loop state only by intersection with the pre-loop state (a loop may
// run zero times). deferred Unlock/RUnlock calls — including ones inside a
// deferred function literal — release their lock at every exit.
//
// Known, documented approximations (DESIGN.md §15): TryLock acquires
// nothing; a pointer derived from a guarded field (&t.members[i]) is not
// tracked through the local; an embedded anonymous sync.Mutex cannot be
// named by //krsp:guardedby; function literals are analyzed as if invoked
// at their creation point (the synchronous-callback idiom), except go
// statements, whose bodies start with an empty lock set.

// holdKind is the strength of a proven hold: RLock yields holdRead, Lock
// yields holdWrite (which satisfies read requirements too).
type holdKind int

const (
	holdRead holdKind = iota + 1
	holdWrite
)

// lockHold is one held lock: its strength and the acquisition site.
type lockHold struct {
	kind holdKind
	pos  token.Pos
}

// lockSet maps canonical lock keys to the strongest hold proven on every
// path reaching the current program point.
type lockSet map[string]lockHold

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockSet) acquire(key string, k holdKind, pos token.Pos) {
	if cur, ok := s[key]; !ok || cur.kind < k {
		s[key] = lockHold{kind: k, pos: pos}
	}
}

// intersectLocks keeps the locks held in both sets, at the weaker strength.
func intersectLocks(a, b lockSet) lockSet {
	out := lockSet{}
	for k, ha := range a {
		if hb, ok := b[k]; ok {
			h := ha
			if hb.kind < ha.kind {
				h = hb
			}
			out[k] = h
		}
	}
	return out
}

// lockHooks are the walker's client callbacks. Any hook may be nil.
type lockHooks struct {
	// access fires for every struct-field selector expression, reads and
	// writes alike, with the lock set held at that point.
	access func(sel *ast.SelectorExpr, base ast.Expr, fld *types.Var, write bool, held lockSet)
	// call fires for every statically-resolved call with the lock set at
	// the call site (lockcheck enforces //krsp:locked here).
	call func(call *ast.CallExpr, callee *types.Func, held lockSet)
	// exit fires at every function exit (each return and the fall-off end)
	// with the locks still held after deferred releases — locks the
	// function acquired but provably never released on this path.
	exit func(pos token.Pos, leaked []leakedLock)
}

// leakedLock is one lock held at a function exit with no release.
type leakedLock struct {
	key string
	pos token.Pos // acquisition site
}

// lockState is the abstract state at one program point.
type lockState struct {
	held       lockSet
	terminated bool
}

func (st *lockState) fork() *lockState {
	return &lockState{held: st.held.clone()}
}

// mergeBranches joins two-way control flow back into st.
func (st *lockState) mergeBranches(a, b *lockState) {
	switch {
	case a.terminated && b.terminated:
		st.terminated = true
	case a.terminated:
		st.held = b.held
	case b.terminated:
		st.held = a.held
	default:
		st.held = intersectLocks(a.held, b.held)
	}
}

// lockWalker drives one function body's walk.
type lockWalker struct {
	info  *types.Info
	hooks *lockHooks
	// entry holds the locks pre-held at function entry (//krsp:locked
	// seeding); they are exempt from leak reporting — the caller owns them.
	entry lockSet
	// deferred records lock keys released by a deferred call anywhere in
	// the body (conditional defers are assumed to run: missing a leak is
	// acceptable, inventing one is not).
	deferred map[string]bool
}

// walkLocks analyzes one function declaration with the given entry
// lock-set, firing hooks as it goes.
func walkLocks(site *declSite, entry lockSet, hooks *lockHooks) {
	if site.fd.Body == nil {
		return
	}
	w := &lockWalker{info: site.pkg.Info, hooks: hooks, entry: entry, deferred: map[string]bool{}}
	w.collectDeferred(site.fd.Body)
	st := &lockState{held: entry.clone()}
	w.stmt(site.fd.Body, st)
	if !st.terminated {
		w.exitAt(site.fd.Body.Rbrace, st)
	}
}

// walkFuncLit analyzes a function literal as its own scope: fresh deferred
// set, its own exits, entry as given.
func (w *lockWalker) walkFuncLit(lit *ast.FuncLit, entry lockSet) {
	w2 := &lockWalker{info: w.info, hooks: w.hooks, entry: entry, deferred: map[string]bool{}}
	w2.collectDeferred(lit.Body)
	st := &lockState{held: entry.clone()}
	w2.stmt(lit.Body, st)
	if !st.terminated {
		w2.exitAt(lit.Body.Rbrace, st)
	}
}

// collectDeferred pre-scans a body for deferred unlock calls, direct or
// inside a deferred function literal, without descending into nested
// function literals' own defers.
func (w *lockWalker) collectDeferred(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its defers belong to its own walk
		case *ast.DeferStmt:
			if op, key, ok := mutexOp(w.info, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				w.deferred[key] = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if op, key, ok := mutexOp(w.info, call); ok && (op == "Unlock" || op == "RUnlock") {
							w.deferred[key] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
}

func (w *lockWalker) exitAt(pos token.Pos, st *lockState) {
	if w.hooks.exit == nil {
		return
	}
	var leaked []leakedLock
	for key, h := range st.held {
		if w.deferred[key] {
			continue
		}
		if _, preHeld := w.entry[key]; preHeld {
			continue
		}
		leaked = append(leaked, leakedLock{key: key, pos: h.pos})
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].key < leaked[j].key })
	w.hooks.exit(pos, leaked)
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) {
	if s == nil || st.terminated {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, x := range s.List {
			w.stmt(x, st)
			if st.terminated {
				return
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, st)
		if isTerminalCall(s.X) { // ir.go: panic / os.Exit / log.Fatal*
			st.terminated = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			w.writeTarget(l, st)
		}
	case *ast.IncDecStmt:
		w.writeTarget(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
		w.exitAt(s.Pos(), st)
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing block; the path drops out
		// of downstream merges.
		st.terminated = true
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenSt := st.fork()
		w.stmt(s.Body, thenSt)
		elseSt := st.fork()
		if s.Else != nil {
			w.stmt(s.Else, elseSt)
		}
		st.mergeBranches(thenSt, elseSt)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodySt := st.fork()
		w.stmt(s.Body, bodySt)
		if !bodySt.terminated {
			w.stmt(s.Post, bodySt)
		}
		if !bodySt.terminated {
			st.held = intersectLocks(st.held, bodySt.held)
		}
	case *ast.RangeStmt:
		w.expr(s.X, st)
		bodySt := st.fork()
		if s.Tok == token.ASSIGN {
			w.writeTarget(s.Key, bodySt)
			w.writeTarget(s.Value, bodySt)
		}
		w.stmt(s.Body, bodySt)
		if !bodySt.terminated {
			st.held = intersectLocks(st.held, bodySt.held)
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		w.mergeClauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		w.mergeClauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.SelectStmt:
		// select blocks until some clause runs: merge only clause exits.
		w.mergeClauses(s.Body, st, false)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			w.expr(a, st)
		}
		// The deferred release itself was pre-collected; a deferred Lock
		// (pathological) is ignored.
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A goroutine body starts with no locks: the spawner's holds do
			// not transfer across the go statement.
			w.walkFuncLit(lit, lockSet{})
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	}
}

// mergeClauses walks each clause body of a switch/select on a fork and
// joins the non-terminated exits; includeSkip additionally keeps the
// pre-statement state in the merge (a switch without default may match no
// case).
func (w *lockWalker) mergeClauses(body *ast.BlockStmt, st *lockState, includeSkip bool) {
	var exits []*lockState
	for _, c := range body.List {
		fork := st.fork()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, fork)
			}
			for _, x := range c.Body {
				w.stmt(x, fork)
				if fork.terminated {
					break
				}
			}
		case *ast.CommClause:
			w.stmt(c.Comm, fork)
			for _, x := range c.Body {
				w.stmt(x, fork)
				if fork.terminated {
					break
				}
			}
		}
		if !fork.terminated {
			exits = append(exits, fork)
		}
	}
	if includeSkip {
		exits = append(exits, &lockState{held: st.held})
	}
	if len(exits) == 0 {
		st.terminated = true
		return
	}
	merged := exits[0].held
	for _, e := range exits[1:] {
		merged = intersectLocks(merged, e.held)
	}
	st.held = merged
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (w *lockWalker) expr(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		w.expr(e.X, st)
		w.fieldAccess(e, false, st)
	case *ast.CallExpr:
		if op, key, ok := mutexOp(w.info, e); ok {
			w.applyLockOp(op, key, e.Pos(), st)
			return
		}
		for _, a := range e.Args {
			w.expr(a, st)
		}
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			w.expr(fun.X, st)
			w.fieldAccess(fun, false, st) // function-valued field
		case *ast.FuncLit:
			w.walkFuncLit(fun, st.held) // immediately invoked
		case *ast.Ident:
		default:
			w.expr(e.Fun, st)
		}
		if w.hooks.call != nil {
			if callee := calleeFunc(w.info, e); callee != nil {
				w.hooks.call(e, callee, st.held)
			}
		}
	case *ast.FuncLit:
		// Closure value: analyzed as if invoked here — the synchronous-
		// callback idiom (sort.Slice et al.). Spawn-only literals are
		// handled at their go statement instead.
		w.walkFuncLit(e, st.held)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking a guarded field's address hands out a mutation channel:
			// treated as a write.
			w.writeTarget(e.X, st)
			return
		}
		w.expr(e.X, st)
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
	case *ast.ParenExpr:
		w.expr(e.X, st)
	case *ast.StarExpr:
		w.expr(e.X, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st)
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
	case *ast.IndexListExpr:
		w.expr(e.X, st)
		for _, ix := range e.Indices {
			w.expr(ix, st)
		}
	case *ast.SliceExpr:
		w.expr(e.X, st)
		w.expr(e.Low, st)
		w.expr(e.High, st)
		w.expr(e.Max, st)
	case *ast.CompositeLit:
		isStruct := false
		if tv, ok := w.info.Types[e]; ok {
			_, isStruct = tv.Type.Underlying().(*types.Struct)
		}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if !isStruct {
					w.expr(kv.Key, st)
				}
				w.expr(kv.Value, st)
				continue
			}
			w.expr(elt, st)
		}
	}
}

// writeTarget walks an assignment target: the terminal selector is a write
// access; writes through an index or deref mutate the guarded container
// and count as writes on its field too.
func (w *lockWalker) writeTarget(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil, *ast.Ident:
	case *ast.SelectorExpr:
		w.expr(e.X, st)
		w.fieldAccess(e, true, st)
	case *ast.IndexExpr:
		w.expr(e.Index, st)
		w.writeTarget(e.X, st)
	case *ast.StarExpr:
		w.writeTarget(e.X, st)
	case *ast.ParenExpr:
		w.writeTarget(e.X, st)
	default:
		w.expr(e, st)
	}
}

func (w *lockWalker) fieldAccess(sel *ast.SelectorExpr, write bool, st *lockState) {
	if w.hooks.access == nil {
		return
	}
	selection, ok := w.info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	w.hooks.access(sel, sel.X, fld, write, st.held)
}

func (w *lockWalker) applyLockOp(op, key string, pos token.Pos, st *lockState) {
	switch op {
	case "Lock":
		st.held.acquire(key, holdWrite, pos)
	case "RLock":
		st.held.acquire(key, holdRead, pos)
	case "Unlock", "RUnlock":
		delete(st.held, key)
	}
	// TryLock/TryRLock deliberately acquire nothing: the boolean result is
	// not path-tracked, and claiming the lock on both arms would be unsound.
}

// mutexOp recognizes a call as a sync.Mutex/RWMutex locking operation and
// returns the method name plus the canonical key of the receiver lock.
func mutexOp(info *types.Info, call *ast.CallExpr) (op, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !isMutexType(sig.Recv().Type()) {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), types.ExprString(sel.X), true
	}
	return "", "", false
}

// exprRootIdent returns the leftmost identifier of a selector/index/deref
// chain ("t" for t.members[i]), or nil.
func exprRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
