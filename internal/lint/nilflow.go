package lint

import (
	"go/ast"
	"go/types"
)

// nilSinkSegs are the packages that declare nil-sink handle types, and
// nilSinkTypes the exact contract set (obs.go: "The nil sink is a no-op.
// Every handle type (*Registry, *Counter, *Gauge, *Histogram, the typed
// metric groups) tolerates a nil receiver"), plus *cancel.Canceller. Other
// pointer types from these packages — the unexported registry internals,
// the test-only ManualClock — make no nil-receiver promise and are not
// audited here.
var (
	nilSinkSegs  = map[string]bool{"obs": true, "cancel": true}
	nilSinkTypes = map[string]bool{
		"*obs.Registry": true, "*obs.Counter": true, "*obs.Gauge": true,
		"*obs.Histogram": true, "*obs.ServerMetrics": true,
		"*obs.SolverMetrics": true, "*obs.FlowMetrics": true,
		"*obs.BicameralMetrics": true, "*obs.ShortestMetrics": true,
		"*cancel.Canceller": true,
	}
)

// Nilflow verifies the nil-sink contract end-to-end with the dataflow
// engine's nilness lattice: a method CALL on a possibly-nil sink pointer is
// the contract working as designed and stays silent, but a DEREFERENCE —
// a field read, a *p copy — bypasses the method-level guards and panics the
// solve path on the first nil registry or canceller. Every dereference of a
// sink pointer must therefore happen where the engine proves the pointer
// non-nil (after an `x == nil` early return, on the guarded side of a
// branch, or from a provably non-nil producer); anything weaker is a
// diagnostic, suppressible with //lint:allow nilflow <reason> for
// invariants the engine cannot see.
var Nilflow = &Analyzer{
	Name:       "nilflow",
	Version:    1,
	Doc:        "prove *obs.Registry / *cancel.Canceller dereferences nil-safe on every solve path",
	RunProgram: runNilflow,
}

func runNilflow(pass *Pass) {
	prog := pass.Prog
	e := prog.dataflow()
	for _, pkg := range prog.Requested {
		info := pkg.Info
		hooks := &dfHooks{
			deref: func(at ast.Node, base ast.Expr, nl nilness, env *absEnv) {
				if nl == nilNonNil {
					return
				}
				tv, ok := info.Types[base]
				if !ok || tv.Type == nil {
					return
				}
				label, isSink := sinkPtrType(tv.Type, nilSinkSegs)
				if !isSink || !nilSinkTypes[label] {
					return
				}
				// Method values are the contract's sanctioned shape: every
				// sink method guards its own nil receiver.
				if sel, isSel := at.(*ast.SelectorExpr); isSel {
					if selection, found := info.Selections[sel]; found && selection.Kind() == types.MethodVal {
						return
					}
				}
				pass.Reportf(at.Pos(),
					"%s dereference of %s %s: the nil-sink contract only covers method calls; guard with a nil check or annotate //lint:allow nilflow <reason>",
					nl, label, types.ExprString(base))
			},
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !mentionsSinkPtr(info, fd) {
					continue
				}
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					e.analyze(fn, hooks)
				}
			}
		}
	}
}

// mentionsSinkPtr is the cheap pre-filter: only functions whose body or
// signature touches a sink pointer type pay for an interpreter run.
func mentionsSinkPtr(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if label, isSink := sinkPtrType(tv.Type, nilSinkSegs); isSink && nilSinkTypes[label] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
