// Package auxgraph implements Algorithm 2 of the paper: the layered
// auxiliary graphs H_v^+(B) and H_v^-(B) over a residual graph G̃, in which
// accumulated residual COST is encoded as a layer index while residual
// DELAY remains the edge weight. Cycles through v in G̃ with cost in
// [0, B] (resp. [−B, 0)) appear as cycles in H_v^+(B) (resp. H_v^-(B))
// through the layer-0 (resp. layer-B) copy of v (Lemma 15).
//
// A third kind, TwoSided, tracks accumulated cost over the full range
// [−B, +B]. It subsumes both one-sided graphs and additionally represents
// cycles whose prefix cost sums leave [0, B] even though their totals stay
// inside — the one-sided constructions only capture a cycle when some
// rotation keeps prefix sums in range, which is the (implicit) regime of
// the paper's Lemma 15. The primary bicameral search uses TwoSided; the
// one-sided graphs remain for paper fidelity and the LP (6) engine.
package auxgraph

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
)

// Kind selects the auxiliary-graph flavor.
type Kind int

const (
	// Plus is H_v^+(B): layers track accumulated cost in [0, B]; wrap edges
	// v^i → v^0 close cycles of total cost +i.
	Plus Kind = iota
	// Minus is H_v^-(B): same layer rules, wrap edges v^i → v^B close
	// cycles of total cost i−B ∈ [−B, 0).
	Minus
	// TwoSided tracks accumulated cost in [−B, +B] with wrap edges
	// v^b → v^0 for every b ≠ 0.
	TwoSided
)

func (k Kind) String() string {
	switch k {
	case Plus:
		return "H+"
	case Minus:
		return "H-"
	case TwoSided:
		return "H±"
	}
	return "?"
}

// Aux is a constructed auxiliary graph with projection bookkeeping.
type Aux struct {
	// H is the layered graph. Edge delays are residual delays; edge costs
	// carry the residual cost for bookkeeping (wrap edges are (0,0)).
	H *graph.Digraph
	// Base is the residual graph the layers were built over.
	Base *graph.Digraph
	// V is the anchor vertex whose copies carry wrap edges.
	V graph.NodeID
	// B is the cost budget.
	B int64
	// Kind records the flavor.
	Kind Kind

	resEdge []graph.EdgeID // per H edge: base edge ID, or -1 for wrap edges
	lo      int64          // lowest layer value (0 or −B)
	layers  int64          // number of layers
}

// Build constructs the auxiliary graph of the given kind. B must be ≥ 1.
func Build(base *graph.Digraph, v graph.NodeID, bound int64, kind Kind) *Aux {
	if bound < 1 {
		//lint:allow nopanic B is solver-computed and ≥ 1 by construction; programmer error
		panic(fmt.Sprintf("auxgraph: budget %d < 1", bound))
	}
	a := &Aux{Base: base, V: v, B: bound, Kind: kind}
	switch kind {
	case Plus, Minus:
		a.lo, a.layers = 0, bound+1
	case TwoSided:
		a.lo, a.layers = -bound, 2*bound+1
	default:
		//lint:allow nopanic exhaustive Kind switch; unreachable
		panic("auxgraph: unknown kind")
	}
	n := base.NumNodes()
	a.H = graph.New(int(a.layers) * n)
	// Layered copies of every base edge.
	for _, e := range base.EdgesView() {
		for l := a.lo; l <= a.hi(); l++ {
			nl := l + e.Cost //lint:allow weightovf layer index: |l| ≤ B and cost is MaxWeight-capped
			if nl < a.lo || nl > a.hi() {
				continue
			}
			a.H.AddEdge(a.node(e.From, l), a.node(e.To, nl), e.Cost, e.Delay)
			a.resEdge = append(a.resEdge, e.ID)
		}
	}
	// Wrap edges at the anchor.
	switch kind {
	case Plus:
		for i := int64(1); i <= bound; i++ {
			a.H.AddEdge(a.node(v, i), a.node(v, 0), 0, 0)
			a.resEdge = append(a.resEdge, -1)
		}
	case Minus:
		for i := int64(0); i < bound; i++ {
			a.H.AddEdge(a.node(v, i), a.node(v, bound), 0, 0)
			a.resEdge = append(a.resEdge, -1)
		}
	case TwoSided:
		for b := -bound; b <= bound; b++ {
			if b == 0 {
				continue
			}
			a.H.AddEdge(a.node(v, b), a.node(v, 0), 0, 0)
			a.resEdge = append(a.resEdge, -1)
		}
	}
	return a
}

// BuildShared constructs a TwoSided layered graph with wrap edges at every
// anchor vertex, so a single negative-cycle detection covers all anchors at
// once (the fast path of the bicameral search). Projection semantics are
// identical to a single-anchor TwoSided graph; a.V is set to the first
// anchor for display only.
func BuildShared(base *graph.Digraph, anchors []graph.NodeID, bound int64) *Aux {
	if bound < 1 {
		//lint:allow nopanic B is solver-computed and ≥ 1 by construction; programmer error
		panic(fmt.Sprintf("auxgraph: budget %d < 1", bound))
	}
	if len(anchors) == 0 {
		//lint:allow nopanic callers derive anchors from ReversedSeeds and check emptiness first
		panic("auxgraph: no anchors")
	}
	a := &Aux{Base: base, V: anchors[0], B: bound, Kind: TwoSided,
		lo: -bound, layers: 2*bound + 1}
	n := base.NumNodes()
	a.H = graph.New(int(a.layers) * n)
	for _, e := range base.EdgesView() {
		for l := a.lo; l <= a.hi(); l++ {
			nl := l + e.Cost //lint:allow weightovf layer index: |l| ≤ B and cost is MaxWeight-capped
			if nl < a.lo || nl > a.hi() {
				continue
			}
			a.H.AddEdge(a.node(e.From, l), a.node(e.To, nl), e.Cost, e.Delay)
			a.resEdge = append(a.resEdge, e.ID)
		}
	}
	for _, v := range anchors {
		for b := -bound; b <= bound; b++ {
			if b == 0 {
				continue
			}
			a.H.AddEdge(a.node(v, b), a.node(v, 0), 0, 0)
			a.resEdge = append(a.resEdge, -1)
		}
	}
	return a
}

func (a *Aux) hi() int64 { return a.lo + a.layers - 1 }

// node maps (base vertex, layer value) to the H vertex.
func (a *Aux) node(u graph.NodeID, layer int64) graph.NodeID {
	return graph.NodeID((layer-a.lo)*int64(a.Base.NumNodes()) + int64(u))
}

// LayerNode exposes the (vertex, layer) → H-vertex mapping; ok=false if the
// layer is out of range.
func (a *Aux) LayerNode(u graph.NodeID, layer int64) (graph.NodeID, bool) {
	if layer < a.lo || layer > a.hi() {
		return 0, false
	}
	return a.node(u, layer), true
}

// Start returns the H vertex at which cycle searches are rooted: v^0 for
// Plus and TwoSided, v^B for Minus.
func (a *Aux) Start() graph.NodeID {
	if a.Kind == Minus {
		return a.node(a.V, a.B)
	}
	return a.node(a.V, 0)
}

// StartLayer returns the layer value of Start.
func (a *Aux) StartLayer() int64 {
	if a.Kind == Minus {
		return a.B
	}
	return 0
}

// CycleCostAt reports the residual cost of a cycle closed by reaching the
// copy of V at the given layer and taking its wrap edge. For Plus it is
// +layer, for Minus layer−B, for TwoSided +layer.
func (a *Aux) CycleCostAt(layer int64) int64 {
	if a.Kind == Minus {
		return layer - a.B
	}
	return layer
}

// ResEdge maps an H edge to its base (residual) edge, or -1 for wraps.
func (a *Aux) ResEdge(id graph.EdgeID) graph.EdgeID { return a.resEdge[id] }

// ProjectWalk maps a closed walk in H (edge ID sequence) down to the base
// graph, dropping wrap edges, and splits the result into vertex-simple base
// cycles. By Lemma 15, the summed cost/delay of the returned cycles equal
// the walk's accumulated residual cost/delay.
func (a *Aux) ProjectWalk(edges []graph.EdgeID) []graph.Cycle {
	var baseWalk []graph.EdgeID
	for _, id := range edges {
		if base := a.resEdge[id]; base >= 0 {
			baseWalk = append(baseWalk, base)
		}
	}
	if len(baseWalk) == 0 {
		return nil
	}
	return flow.SplitClosedWalk(a.Base, baseWalk)
}

// Project is ProjectWalk for a graph.Cycle in H.
func (a *Aux) Project(c graph.Cycle) []graph.Cycle { return a.ProjectWalk(c.Edges) }
