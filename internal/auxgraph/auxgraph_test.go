package auxgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// negDelayCycleBase: residual-like graph with a cost-0, delay-negative
// 3-cycle 0→1→2→0.
func negDelayCycleBase() *graph.Digraph {
	g := graph.New(3)
	g.AddEdge(0, 1, 2, 1)   // e0
	g.AddEdge(1, 2, 1, 1)   // e1
	g.AddEdge(2, 0, -3, -5) // e2 (reversed solution edge)
	return g
}

func TestBuildSizesPlus(t *testing.T) {
	g := negDelayCycleBase()
	a := Build(g, 0, 3, Plus)
	if a.H.NumNodes() != 3*4 {
		t.Fatalf("nodes = %d", a.H.NumNodes())
	}
	// e0 (cost 2): layers 0,1 → 2 copies; e1 (cost 1): layers 0..2 → 3;
	// e2 (cost −3): layer 3 → 1 copy; wraps: 3.
	if a.H.NumEdges() != 2+3+1+3 {
		t.Fatalf("edges = %d", a.H.NumEdges())
	}
	if err := a.H.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerNodeMapping(t *testing.T) {
	g := negDelayCycleBase()
	a := Build(g, 1, 2, TwoSided)
	if _, ok := a.LayerNode(0, 3); ok {
		t.Fatal("layer 3 should be out of range for B=2")
	}
	if _, ok := a.LayerNode(0, -3); ok {
		t.Fatal("layer −3 should be out of range")
	}
	id, ok := a.LayerNode(2, -2)
	if !ok {
		t.Fatal("layer −2 must exist")
	}
	if int(id) >= a.H.NumNodes() {
		t.Fatal("mapped node out of range")
	}
	if a.Start() != mustNode(t, a, 1, 0) {
		t.Fatal("TwoSided start must be v^0")
	}
}

func mustNode(t *testing.T, a *Aux, v graph.NodeID, l int64) graph.NodeID {
	t.Helper()
	id, ok := a.LayerNode(v, l)
	if !ok {
		t.Fatalf("layer %d missing", l)
	}
	return id
}

func TestStartAndCycleCostAt(t *testing.T) {
	g := negDelayCycleBase()
	plus := Build(g, 0, 3, Plus)
	minus := Build(g, 0, 3, Minus)
	two := Build(g, 0, 3, TwoSided)
	if plus.StartLayer() != 0 || two.StartLayer() != 0 || minus.StartLayer() != 3 {
		t.Fatal("start layers wrong")
	}
	if plus.CycleCostAt(2) != 2 || minus.CycleCostAt(1) != -2 || two.CycleCostAt(-3) != -3 {
		t.Fatal("CycleCostAt wrong")
	}
	if plus.Kind.String() != "H+" || minus.Kind.String() != "H-" || two.Kind.String() != "H±" {
		t.Fatal("kind strings")
	}
}

func TestTwoSidedFindsZeroCostNegativeDelayCycle(t *testing.T) {
	g := negDelayCycleBase()
	a := Build(g, 0, 3, TwoSided)
	// The base cycle has cost 0 with prefix sums 2,3,0 ∈ [−3,3]; it embeds
	// as a negative-delay cycle in H (no wrap needed).
	_, cyc, ok := shortest.BellmanFord(a.H, a.Start(), shortest.DelayWeight)
	if ok {
		t.Fatal("negative-delay cycle not detected in H")
	}
	projected := a.Project(cyc)
	if len(projected) == 0 {
		t.Fatal("projection empty")
	}
	var totC, totD int64
	for _, c := range projected {
		if err := c.Validate(g, false); err != nil {
			t.Fatal(err)
		}
		totC += c.Cost(g)
		totD += c.Delay(g)
	}
	if totD >= 0 {
		t.Fatalf("projected delay %d not negative", totD)
	}
	if totC != cyc.Cost(a.H) {
		t.Fatalf("projected cost %d != H cycle cost %d", totC, cyc.Cost(a.H))
	}
}

// posCostNegDelayBase: 2-cycle with cost +2 and delay −3.
func posCostNegDelayBase() *graph.Digraph {
	g := graph.New(2)
	g.AddEdge(0, 1, 1, -4)
	g.AddEdge(1, 0, 1, 1)
	return g
}

func TestPlusFindsPositiveCostCycleViaWrap(t *testing.T) {
	g := posCostNegDelayBase()
	a := Build(g, 0, 2, Plus)
	// Cycle in H: 0^0 → 1^1 → 0^2 → wrap → 0^0, total delay −3 < 0.
	_, cyc, ok := shortest.BellmanFord(a.H, a.Start(), shortest.DelayWeight)
	if ok {
		t.Fatal("expected negative cycle through wrap")
	}
	projected := a.Project(cyc)
	var totC, totD int64
	for _, c := range projected {
		totC += c.Cost(g)
		totD += c.Delay(g)
	}
	if totC <= 0 || totD >= 0 {
		t.Fatalf("projected (c=%d, d=%d), want c>0, d<0", totC, totD)
	}
}

func TestMinusFindsNegativeCostCycle(t *testing.T) {
	// 2-cycle with cost −2, delay +3: only H_v^-(B) (or TwoSided) sees it
	// as a layer-reachable cycle.
	g := graph.New(2)
	g.AddEdge(0, 1, -1, 4) // reversed expensive edge
	g.AddEdge(1, 0, -1, -1)
	a := Build(g, 0, 2, Minus)
	// From v^2: 0^2 → 1^1 → 0^0 → wrap → 0^2; delay 3 ≥ 0, so no negative
	// cycle: instead check reachability of the wrap source layer.
	tr, _, ok := shortest.BellmanFord(a.H, a.Start(), shortest.DelayWeight)
	if !ok {
		// A negative-delay cycle may exist via other compositions; fine.
		t.Skip("unexpected negative cycle; covered elsewhere")
	}
	n0 := mustNode(t, a, 0, 0)
	if tr.Dist[n0] == shortest.Inf {
		t.Fatal("layer 0 copy of v unreachable")
	}
	if got := a.CycleCostAt(0); got != -2 {
		t.Fatalf("cycle cost at layer 0 = %d", got)
	}
	if tr.Dist[n0] != 3 {
		t.Fatalf("min delay %d, want 3", tr.Dist[n0])
	}
}

func TestProjectWalkDropsWraps(t *testing.T) {
	g := posCostNegDelayBase()
	a := Build(g, 0, 2, Plus)
	// Hand-walk the known cycle: find H edges 0^0→1^1, 1^1→0^2, wrap.
	var walk []graph.EdgeID
	cur := a.Start()
	targets := []graph.NodeID{mustNode(t, a, 1, 1), mustNode(t, a, 0, 2), a.Start()}
	for _, want := range targets {
		found := false
		for _, id := range a.H.Out(cur) {
			if a.H.Edge(id).To == want {
				walk = append(walk, id)
				cur = want
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge to %d missing", want)
		}
	}
	cycles := a.ProjectWalk(walk)
	if len(cycles) != 1 || cycles[0].Len() != 2 {
		t.Fatalf("projected = %+v", cycles)
	}
	if err := cycles[0].Validate(g, true); err != nil {
		t.Fatal(err)
	}
	if a.ProjectWalk(nil) != nil {
		t.Fatal("empty walk should project to nothing")
	}
}

// TestLemma15RoundTrip property: on random small residual-like graphs, for
// every layer b of the TwoSided graph reachable from v^0 without negative
// cycles, the projected closed walk (path + wrap) yields cycles whose
// summed cost equals b and summed delay equals the H-distance.
func TestLemma15RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(7)-3), int64(r.Intn(9)-2))
			}
		}
		B := int64(3)
		for v := 0; v < n; v++ {
			a := Build(g, graph.NodeID(v), B, TwoSided)
			tr, _, ok := shortest.BellmanFord(a.H, a.Start(), shortest.DelayWeight)
			if !ok {
				continue // negative cycle cases covered by other tests
			}
			for b := -B; b <= B; b++ {
				if b == 0 {
					continue
				}
				vb, okk := a.LayerNode(graph.NodeID(v), b)
				if !okk || tr.Dist[vb] == shortest.Inf {
					continue
				}
				p, _ := tr.PathTo(a.H, vb)
				cycles := a.ProjectWalk(p.Edges) // wrap implied: ends at v
				var totC, totD int64
				for _, c := range cycles {
					if c.Validate(g, false) != nil {
						return false
					}
					totC += c.Cost(g)
					totD += c.Delay(g)
				}
				if totC != b || totD != tr.Dist[vb] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPanicsOnBadBudget(t *testing.T) {
	g := negDelayCycleBase()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(g, 0, 0, Plus)
}
