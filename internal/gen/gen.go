// Package gen produces the synthetic kRSP workloads of the experiment
// suite. The paper evaluates nothing (it is a brief announcement), so these
// generators are the substitution documented in DESIGN.md §2: seeded,
// deterministic topologies from the QoS-routing domain the paper motivates
// (SDN/ISP networks), with tunable cost/delay anti-correlation — the regime
// where the cost/delay tradeoff is actually hard.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Weights controls edge weight synthesis. Cost and delay are drawn from
// [1, MaxCost] / [1, MaxDelay]; Correlation in [−1, 1] couples them:
// +1 makes expensive edges slow, −1 makes expensive edges fast (the
// tradeoff-hard regime, and the default for experiments).
type Weights struct {
	MaxCost     int64
	MaxDelay    int64
	Correlation float64
}

// DefaultWeights is the anti-correlated regime used across experiments.
func DefaultWeights() Weights {
	return Weights{MaxCost: 20, MaxDelay: 20, Correlation: -0.8}
}

func (w Weights) draw(r *rand.Rand) (cost, delay int64) {
	if w.MaxCost < 1 {
		w.MaxCost = 1
	}
	if w.MaxDelay < 1 {
		w.MaxDelay = 1
	}
	u := r.Float64()
	cost = 1 + int64(u*float64(w.MaxCost-1)+0.5)
	// Blend an independent draw with the (anti-)correlated component.
	v := r.Float64()
	rho := w.Correlation
	base := u
	if rho < 0 {
		base = 1 - u
		rho = -rho
	}
	mix := rho*base + (1-rho)*v
	delay = 1 + int64(mix*float64(w.MaxDelay-1)+0.5)
	return cost, delay
}

// ER generates an Erdős–Rényi style random digraph with n vertices and
// approximately density·n·(n−1) directed edges (self-loops excluded),
// guaranteeing s→t structural connectivity by planting two disjoint paths.
func ER(seed int64, n int, density float64, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if r.Float64() < density {
				c, d := w.draw(r)
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), c, d)
			}
		}
	}
	ins := graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1), K: 2,
		Name: fmt.Sprintf("er-n%d-d%.2f-s%d", n, density, seed)}
	plantPaths(r, &ins, w, 2)
	return ins
}

// Grid generates a rows×cols mesh with rightward, downward and a sprinkle
// of diagonal edges; s is the top-left corner, t the bottom-right. Meshes
// model data-center style topologies with many short disjoint routes.
func Grid(seed int64, rows, cols int, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(rows * cols)
	at := func(i, j int) graph.NodeID { return graph.NodeID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				c, d := w.draw(r)
				g.AddEdge(at(i, j), at(i, j+1), c, d)
			}
			if i+1 < rows {
				c, d := w.draw(r)
				g.AddEdge(at(i, j), at(i+1, j), c, d)
			}
			if i+1 < rows && j+1 < cols && r.Float64() < 0.3 {
				c, d := w.draw(r)
				g.AddEdge(at(i, j), at(i+1, j+1), c, d)
			}
		}
	}
	return graph.Instance{G: g, S: at(0, 0), T: at(rows-1, cols-1), K: 2,
		Name: fmt.Sprintf("grid-%dx%d-s%d", rows, cols, seed)}
}

// Layered generates a DAG of `layers` layers of `width` vertices each,
// fully forward-connected layer to layer with probability density, plus a
// source and sink. Layered DAGs are the classic RSP benchmark shape.
func Layered(seed int64, layers, width int, density float64, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	n := layers*width + 2
	g := graph.New(n)
	s := graph.NodeID(n - 2)
	t := graph.NodeID(n - 1)
	at := func(l, i int) graph.NodeID { return graph.NodeID(l*width + i) }
	for i := 0; i < width; i++ {
		c, d := w.draw(r)
		g.AddEdge(s, at(0, i), c, d)
		c, d = w.draw(r)
		g.AddEdge(at(layers-1, i), t, c, d)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			linked := false
			for j := 0; j < width; j++ {
				if r.Float64() < density {
					c, d := w.draw(r)
					g.AddEdge(at(l, i), at(l+1, j), c, d)
					linked = true
				}
			}
			if !linked {
				c, d := w.draw(r)
				g.AddEdge(at(l, i), at(l+1, r.Intn(width)), c, d)
			}
		}
	}
	return graph.Instance{G: g, S: s, T: t, K: 2,
		Name: fmt.Sprintf("layered-%dx%d-s%d", layers, width, seed)}
}

// Geometric scatters n points in the unit square and connects pairs within
// the given radius (both directions). Cost is proportional to Euclidean
// length (bandwidth rental), delay anti-correlates per Weights — the
// Waxman-flavoured WAN model.
func Geometric(seed int64, n int, radius float64, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{r.Float64(), r.Float64()}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			dist := math.Sqrt(dx*dx + dy*dy)
			if dist <= radius {
				c := 1 + int64(dist/radius*float64(w.MaxCost-1)+0.5)
				_, d := w.draw(r)
				g.AddEdge(graph.NodeID(i), graph.NodeID(j), c, d)
			}
		}
	}
	// Terminals: the most separated pair would be ideal; corner-most pair
	// is a cheap deterministic proxy.
	s, t := 0, 0
	for i := 1; i < n; i++ {
		if pts[i].x+pts[i].y < pts[s].x+pts[s].y {
			s = i
		}
		if pts[i].x+pts[i].y > pts[t].x+pts[t].y {
			t = i
		}
	}
	ins := graph.Instance{G: g, S: graph.NodeID(s), T: graph.NodeID(t), K: 2,
		Name: fmt.Sprintf("geo-n%d-r%.2f-s%d", n, radius, seed)}
	plantPaths(r, &ins, w, 2)
	return ins
}

// ISP builds a ring-of-trees topology: a bidirected core ring of `ring`
// routers, each hanging a small access tree. s and t sit in access trees on
// opposite ring sides — the shape of the paper's SDN motivation.
func ISP(seed int64, ring, treeDepth int, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(ring)
	addBi := func(u, v graph.NodeID) {
		c, d := w.draw(r)
		g.AddEdge(u, v, c, d)
		c, d = w.draw(r)
		g.AddEdge(v, u, c, d)
	}
	for i := 0; i < ring; i++ {
		addBi(graph.NodeID(i), graph.NodeID((i+1)%ring))
	}
	// A chord or two for path diversity.
	for i := 0; i < ring/3; i++ {
		u := graph.NodeID(r.Intn(ring))
		v := graph.NodeID(r.Intn(ring))
		if u != v {
			addBi(u, v)
		}
	}
	// Access chains are dual-homed (every access node also uplinks to a
	// second ring router) so that end hosts keep two disjoint routes — the
	// standard ISP redundancy pattern, and a requirement for k = 2.
	grow := func(root, backup graph.NodeID) graph.NodeID {
		cur := root
		for d := 0; d < treeDepth; d++ {
			leaf := g.AddNode()
			addBi(cur, leaf)
			addBi(backup, leaf)
			cur = leaf
		}
		return cur
	}
	s := grow(0, graph.NodeID(1%ring))
	t := grow(graph.NodeID(ring/2), graph.NodeID((ring/2+1)%ring))
	return graph.Instance{G: g, S: s, T: t, K: 2,
		Name: fmt.Sprintf("isp-r%d-d%d-s%d", ring, treeDepth, seed)}
}

// plantPaths adds `count` vertex-disjoint random s→t paths so generated
// instances admit at least that many disjoint routes.
func plantPaths(r *rand.Rand, ins *graph.Instance, w Weights, count int) {
	n := ins.G.NumNodes()
	if n < 4 {
		return
	}
	perm := r.Perm(n)
	used := map[int]bool{int(ins.S): true, int(ins.T): true}
	for p := 0; p < count; p++ {
		hops := 1 + r.Intn(3)
		prev := ins.S
		for h := 0; h < hops; h++ {
			var mid int = -1
			for _, cand := range perm {
				if !used[cand] {
					mid = cand
					break
				}
			}
			if mid < 0 {
				break
			}
			used[mid] = true
			c, d := w.draw(r)
			ins.G.AddEdge(prev, graph.NodeID(mid), c, d)
			prev = graph.NodeID(mid)
		}
		c, d := w.draw(r)
		ins.G.AddEdge(prev, ins.T, c, d)
	}
}

// WithBound sets the delay bound to minDelay·slack (slack ≥ 1.0) using the
// exact feasibility certificate, returning ok=false if the instance cannot
// host K disjoint paths at all.
func WithBound(ins graph.Instance, slack float64) (graph.Instance, bool) {
	ins.Bound = 1 << 40 // temporarily unconstrained for validation
	feas, err := core.CheckFeasible(ins)
	if err != nil || feas.MaxDisjoint < ins.K {
		return ins, false
	}
	b := int64(float64(feas.MinDelay) * slack)
	if b < feas.MinDelay {
		b = feas.MinDelay
	}
	ins.Bound = b
	return ins, true
}
