package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
)

func checkInstance(t *testing.T, ins graph.Instance) {
	t.Helper()
	ins.Bound = 1 << 40
	if err := ins.Validate(); err != nil {
		t.Fatalf("%s: %v", ins.Name, err)
	}
	if !ins.G.HasNonNegativeWeights() {
		t.Fatalf("%s: negative weights", ins.Name)
	}
}

func TestERDeterministicAndConnected(t *testing.T) {
	a := ER(7, 20, 0.2, DefaultWeights())
	b := ER(7, 20, 0.2, DefaultWeights())
	checkInstance(t, a)
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for _, e := range a.G.Edges() {
		if b.G.Edge(e.ID) != e {
			t.Fatal("same seed produced different edges")
		}
	}
	bounded, ok := WithBound(a, 1.5)
	if !ok {
		t.Fatal("planted paths should make k=2 feasible")
	}
	feas, err := core.CheckFeasible(bounded)
	if err != nil || !feas.OK {
		t.Fatalf("bounded instance infeasible: %+v %v", feas, err)
	}
}

func TestGrid(t *testing.T) {
	ins := Grid(3, 4, 5, DefaultWeights())
	checkInstance(t, ins)
	if ins.G.NumNodes() != 20 {
		t.Fatalf("nodes = %d", ins.G.NumNodes())
	}
	if _, ok := WithBound(ins, 2.0); !ok {
		t.Fatal("grid should admit 2 disjoint paths")
	}
}

func TestLayered(t *testing.T) {
	ins := Layered(11, 4, 3, 0.5, DefaultWeights())
	checkInstance(t, ins)
	if _, ok := WithBound(ins, 1.2); !ok {
		t.Fatal("layered should admit 2 disjoint paths")
	}
}

func TestGeometric(t *testing.T) {
	ins := Geometric(5, 25, 0.35, DefaultWeights())
	checkInstance(t, ins)
	if ins.S == ins.T {
		t.Fatal("degenerate terminals")
	}
	if _, ok := WithBound(ins, 1.5); !ok {
		t.Fatal("geometric with planted paths should be feasible")
	}
}

func TestISP(t *testing.T) {
	ins := ISP(9, 8, 2, DefaultWeights())
	checkInstance(t, ins)
	if _, ok := WithBound(ins, 1.5); !ok {
		t.Fatal("ring should admit 2 disjoint paths")
	}
}

func TestWeightsCorrelation(t *testing.T) {
	// Strong anti-correlation: cheap edges should tend to be slow. Check
	// the sign of the sample covariance over many draws.
	ins := ER(1, 40, 0.15, Weights{MaxCost: 100, MaxDelay: 100, Correlation: -1})
	var sc, sd, scd float64
	n := float64(ins.G.NumEdges())
	for _, e := range ins.G.Edges() {
		sc += float64(e.Cost)
		sd += float64(e.Delay)
	}
	mc, md := sc/n, sd/n
	for _, e := range ins.G.Edges() {
		scd += (float64(e.Cost) - mc) * (float64(e.Delay) - md)
	}
	if scd >= 0 {
		t.Fatalf("expected negative covariance, got %f", scd/n)
	}
}

func TestFigure1Pathology(t *testing.T) {
	ins, opt, err := Figure1(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exact optimum matches the documented C_OPT.
	res, err := exact.BruteForce(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != opt || res.Delay != 4 {
		t.Fatalf("OPT = %d/%d, want %d/4", res.Cost, res.Delay, opt)
	}
	// The paper's algorithm stays within 2·OPT.
	cres, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Delay > ins.Bound {
		t.Fatalf("delay %d", cres.Delay)
	}
	if cres.Cost > 2*opt {
		t.Fatalf("cost %d > 2·OPT=%d", cres.Cost, 2*opt)
	}
}

func TestFigure1BadParams(t *testing.T) {
	if _, _, err := Figure1(0, 4); err == nil {
		t.Fatal("expected error for C=0")
	}
	if _, _, err := Figure1(10, 0); err == nil {
		t.Fatal("expected error for D=0")
	}
}

func TestFigure2Shape(t *testing.T) {
	ins, path, budget := Figure2()
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if budget != 6 {
		t.Fatalf("budget = %d", budget)
	}
	p := graph.Path{Edges: path}
	if err := p.Validate(ins.G, ins.S, ins.T, true); err != nil {
		t.Fatal(err)
	}
}

func TestHardChainOptimum(t *testing.T) {
	for _, stages := range []int{1, 2, 3} {
		ins, opt, err := HardChain(stages, 7, 5)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if err := ins.Validate(); err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		res, err := exact.BruteForce(ins, 0)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if res.Cost != opt {
			t.Fatalf("stages=%d: OPT=%d, documented %d", stages, res.Cost, opt)
		}
	}
}

func TestHardChainSolveBounds(t *testing.T) {
	for _, stages := range []int{2, 4, 6} {
		ins, opt, err := HardChain(stages, 7, 5)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		res, err := core.Solve(ins, core.Options{})
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if res.Delay > ins.Bound {
			t.Fatalf("stages=%d: delay %d > %d", stages, res.Delay, ins.Bound)
		}
		if res.Cost > 2*opt {
			t.Fatalf("stages=%d: cost %d > 2·OPT=%d", stages, res.Cost, 2*opt)
		}
	}
}

func TestHardChainBadParams(t *testing.T) {
	if _, _, err := HardChain(0, 1, 1); err == nil {
		t.Fatal("expected error for stages=0")
	}
	if _, _, err := HardChain(2, 0, 1); err == nil {
		t.Fatal("expected error for stageC=0")
	}
	if _, _, err := HardChain(2, 1, 0); err == nil {
		t.Fatal("expected error for stageD=0")
	}
}
