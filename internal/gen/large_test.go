package gen

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

// TestLargeGeneratorsSeedDeterministic extends the determinism contract to
// the large families: same seed → byte-identical instance; different seeds
// must actually differ (a generator ignoring its seed would silently turn
// the bench sweep into one repeated instance).
func TestLargeGeneratorsSeedDeterministic(t *testing.T) {
	w := DefaultWeights()
	families := []struct {
		name string
		make func(seed int64) graph.Instance
	}{
		{"LayeredGrid", func(seed int64) graph.Instance { return LayeredGrid(seed, 12, 30, w) }},
		{"GeometricFast", func(seed int64) graph.Instance { return GeometricFast(seed, 300, 0.08, w) }},
		{"Expander", func(seed int64) graph.Instance { return Expander(seed, 400, 3, w) }},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				want := fingerprint(fam.make(seed))
				if got := fingerprint(fam.make(seed)); !bytes.Equal(want, got) {
					t.Fatalf("seed %d: second run differs from first", seed)
				}
			}
			if bytes.Equal(fingerprint(fam.make(1)), fingerprint(fam.make(2))) {
				t.Fatal("seeds 1 and 2 generated identical instances")
			}
		})
	}
}

// TestGeometricFastMatchesGeometric: the cell-bucketed generator is a
// drop-in for the quadratic one — byte-identical output across seeds, sizes
// and radii (including radius ≥ 1, the single-cell degenerate case).
func TestGeometricFastMatchesGeometric(t *testing.T) {
	w := DefaultWeights()
	cases := []struct {
		n      int
		radius float64
	}{
		{20, 0.3}, {60, 0.15}, {150, 0.09}, {40, 1.0}, {35, 0.51},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 6; seed++ {
			want := fingerprint(Geometric(seed, c.n, c.radius, w))
			got := fingerprint(GeometricFast(seed, c.n, c.radius, w))
			if !bytes.Equal(want, got) {
				t.Fatalf("n=%d r=%g seed=%d: GeometricFast diverges from Geometric",
					c.n, c.radius, seed)
			}
		}
	}
}

// TestLargeGeneratorsShape pins the size contracts the bench tier relies
// on: Θ(n) edges with small constants, and feasible k=2 instances.
func TestLargeGeneratorsShape(t *testing.T) {
	w := DefaultWeights()

	lg := LayeredGrid(3, 10, 50, w)
	if n := lg.G.NumNodes(); n != 10*50+2 {
		t.Fatalf("LayeredGrid nodes = %d", n)
	}
	if m, want := lg.G.NumEdges(), 9*50*3+2*50; m != want {
		t.Fatalf("LayeredGrid edges = %d want %d", m, want)
	}

	ex := Expander(3, 500, 4, w)
	if n := ex.G.NumNodes(); n != 500 {
		t.Fatalf("Expander nodes = %d", n)
	}
	// 4 permutations minus skipped fixed points minus planted-path extras:
	// within [4n − 4·ln n − slack, 4n + planted].
	if m := ex.G.NumEdges(); m < 4*500-60 || m > 4*500+10 {
		t.Fatalf("Expander edges = %d", m)
	}
	// Out-degrees stay bounded (expander property sanity, not exact
	// regularity: permutations overlap and planted paths add a few).
	maxDeg := 0
	for v := 0; v < ex.G.NumNodes(); v++ {
		if d := len(ex.G.Out(graph.NodeID(v))); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 4+6 {
		t.Fatalf("Expander max out-degree = %d", maxDeg)
	}

	for _, ins := range []graph.Instance{lg, ex, GeometricFast(3, 250, 0.1, w)} {
		if _, ok := WithBound(ins, 1.5); !ok {
			t.Fatalf("%s: not feasible for k=2", ins.Name)
		}
	}
}

// TestInsertionSortInt32 exercises the merge helper against sort.Slice on
// random bucket-run shaped inputs.
func TestInsertionSortInt32(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var a []int32
		for run := 0; run < 1+r.Intn(9); run++ {
			start := int32(r.Intn(100))
			for x := start; x < start+int32(r.Intn(8)); x++ {
				a = append(a, x)
			}
		}
		want := append([]int32(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		insertionSortInt32(a)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("trial %d: sort mismatch at %d", trial, i)
			}
		}
		a = a[:0]
	}
}
