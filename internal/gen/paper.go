package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Figure1 reconstructs the paper's Figure 1 pathology family for a given
// cost scale C and delay bound D (k = 2). The instance's structure matches
// the caption exactly — vertices s, a, b, c, t with:
//
//   - the cheap but slow chain s→a→b→c→t (cost 0, delay 2D),
//   - the trivial second path s→t (cost 0, delay 0),
//   - the optimal shortcut b→t making {s·a·b·t, s·t} cost C and delay D,
//   - the pathological shortcut a→t of cost C·(D+1)−1 and delay 0.
//
// An algorithm that cancels cycles without Definition 10's |c(O)| ≤ C_OPT
// constraint can end at {s·a·t, s·t} paying ≈ (D+1)·OPT; with the
// constraint the paper's (and this repo's) algorithm stays ≤ 2·OPT.
// Experiment E3 sweeps D and measures both behaviours.
//
// The parameters typically come straight from command-line flags, so bad
// values are reported as an error rather than a panic.
func Figure1(scaleC, boundD int64) (graph.Instance, int64, error) {
	if scaleC < 1 || boundD < 1 {
		return graph.Instance{}, 0, fmt.Errorf("gen: Figure1 wants positive parameters, got C=%d D=%d", scaleC, boundD)
	}
	g := graph.New(5)
	const (
		s = 0
		a = 1
		b = 2
		c = 3
		t = 4
	)
	g.AddEdge(s, a, 0, 0)                   // e0
	g.AddEdge(a, b, 0, boundD)              // e1
	g.AddEdge(b, c, 0, boundD)              // e2
	g.AddEdge(c, t, 0, 0)                   // e3
	g.AddEdge(s, t, 0, 0)                   // e4 second path
	g.AddEdge(b, t, scaleC, 0)              // e5 optimal shortcut
	g.AddEdge(a, t, scaleC*(boundD+1)-1, 0) // e6 pathological shortcut
	ins := graph.Instance{G: g, S: s, T: t, K: 2, Bound: boundD,
		Name: fmt.Sprintf("figure1-C%d-D%d", scaleC, boundD)}
	return ins, scaleC, nil // C_OPT = scaleC
}

// Figure2 reconstructs the shape of the paper's Figure 2 example: a path
// s→x→y→z→t with shortcut edges, used to demonstrate residual and
// auxiliary graph construction with cost budget B = 6. The figure's precise
// weights are not recoverable from the text, so representative values are
// used; the construction pipeline exercised (G → G̃ wrt s·x·y·z·t →
// H_v(B)) is exactly the paper's.
func Figure2() (ins graph.Instance, pathEdges []graph.EdgeID, budget int64) {
	g := graph.New(5)
	const (
		s = 0
		x = 1
		y = 2
		z = 3
		t = 4
	)
	e0 := g.AddEdge(s, x, 1, 1)
	e1 := g.AddEdge(x, y, 2, 1)
	e2 := g.AddEdge(y, z, 1, 2)
	e3 := g.AddEdge(z, t, 2, 1)
	g.AddEdge(s, y, 2, 3)
	g.AddEdge(x, z, 3, 1)
	g.AddEdge(y, t, 1, 4)
	ins = graph.Instance{G: g, S: s, T: t, K: 1, Bound: 5, Name: "figure2"}
	return ins, []graph.EdgeID{e0, e1, e2, e3}, 6
}

// HardChain generalizes the Figure 1 gadget into a chain of `stages`
// independent cost/delay traps: each stage carries a free-but-slow segment
// (delay 2·stageD), a fair shortcut (cost stageC, halving the stage delay)
// and an overpriced shortcut. Phase 1's min-cost flow takes every slow
// segment, so Algorithm 1 must cancel one cycle per stage to meet the
// bound — the family that exercises multi-iteration cancellation (unlike
// random instances, which typically converge in one). Like Figure1, the
// parameters are flag-shaped, so bad values come back as an error.
func HardChain(stages int, stageC, stageD int64) (graph.Instance, int64, error) {
	if stages < 1 || stageC < 1 || stageD < 1 {
		return graph.Instance{}, 0, fmt.Errorf("gen: HardChain wants positive parameters, got %d/%d/%d", stages, stageC, stageD)
	}
	// Per stage: in → a → b → out (free, delay stageD each hop), shortcut
	// a→out (cost stageC, delay 0), trap a→b duplicate expensive? Keep two
	// options per stage: slow free path (2·stageD) or paid fast path
	// (stageC, delay 0 after hop a).
	n := stages*3 + 1
	g := graph.New(n + 1) // +1 for the parallel second route
	at := func(stage, off int) graph.NodeID { return graph.NodeID(stage*3 + off) }
	for s := 0; s < stages; s++ {
		in, a, b, out := at(s, 0), at(s, 1), at(s, 2), at(s+1, 0)
		g.AddEdge(in, a, 0, 0)
		g.AddEdge(a, b, 0, stageD)
		g.AddEdge(b, out, 0, stageD)
		g.AddEdge(a, out, stageC, 0)                 // fair shortcut
		g.AddEdge(a, out, stageC*(stageD+1), stageD) // overpriced decoy
	}
	// Second disjoint route: one long free edge chain via the extra vertex.
	extra := graph.NodeID(n)
	g.AddEdge(at(0, 0), extra, 0, 0)
	g.AddEdge(extra, at(stages, 0), 0, 0)
	// Bound: half the stages must take the paid shortcut.
	bound := int64(stages) * stageD
	ins := graph.Instance{G: g, S: at(0, 0), T: at(stages, 0), K: 2, Bound: bound,
		Name: fmt.Sprintf("hardchain-%d-C%d-D%d", stages, stageC, stageD)}
	// Optimal: pay the shortcut in ⌈stages/2⌉ stages (each paid stage saves
	// 2·stageD; need total ≤ stages·stageD ⇒ ⌈stages/2⌉ shortcuts).
	opt := int64((stages+1)/2) * stageC
	return ins, opt, nil
}
