package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Large-instance generators. The families in gen.go top out around a few
// hundred vertices because their edge synthesis is O(n²) (ER, Geometric) or
// dense per layer (Layered). The three families here are built for the
// N=5k..50k bench tier: every one of them emits Θ(n) edges with bounded
// degree and runs in O(n + m), so instance construction never dominates the
// solve being measured.

// LayeredGrid generates a DAG of `layers` layers of `width` vertices where
// each vertex connects to the same-index and adjacent-index vertices of the
// next layer (wrapping at the edges), plus a source and sink fanned into the
// first and last layers. It is the constant-degree cousin of Layered: m ≈
// 3·layers·width regardless of width, so width can grow into the tens of
// thousands. Disjoint s→t routes abound by construction (any two
// column-disjoint lanes), making it the friendliest large family for k > 2.
func LayeredGrid(seed int64, layers, width int, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	n := layers*width + 2
	g := graph.New(n)
	s := graph.NodeID(n - 2)
	t := graph.NodeID(n - 1)
	at := func(l, i int) graph.NodeID { return graph.NodeID(l*width + i) }
	for i := 0; i < width; i++ {
		c, d := w.draw(r)
		g.AddEdge(s, at(0, i), c, d)
		c, d = w.draw(r)
		g.AddEdge(at(layers-1, i), t, c, d)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for _, j := range [3]int{(i + width - 1) % width, i, (i + 1) % width} {
				c, d := w.draw(r)
				g.AddEdge(at(l, i), at(l+1, j), c, d)
			}
		}
	}
	return graph.Instance{G: g, S: s, T: t, K: 2,
		Name: fmt.Sprintf("lgrid-%dx%d-s%d", layers, width, seed)}
}

// GeometricFast is Geometric with the O(n²) pair scan replaced by a uniform
// cell grid of side `radius`: each point only tests the 3×3 neighbourhood of
// its cell, so construction is O(n + m) in expectation. For any (seed, n,
// radius) the output instance is BYTE-IDENTICAL to Geometric's — candidates
// are re-sorted into ascending index order before edges are drawn, which
// reproduces Geometric's edge order and random-stream consumption exactly.
// Use it whenever n is large; the quadratic original stays as the oracle its
// differential test checks against.
func GeometricFast(seed int64, n int, radius float64, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{r.Float64(), r.Float64()}
	}
	// Bucket points by cell. Cell width 1/side must be ≥ radius so that all
	// neighbours of a point live in its 3×3 cell block; side = ⌊1/radius⌋ is
	// the finest grid satisfying that. Buckets hold ascending indices by
	// construction (points are appended in index order).
	side := 1
	if radius > 0 && radius < 1 {
		if side = int(1 / radius); side < 1 {
			side = 1
		}
	}
	cellOf := func(p pt) (int, int) {
		cx, cy := int(p.x*float64(side)), int(p.y*float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	cells := make([][]int32, side*side)
	for i, p := range pts {
		cx, cy := cellOf(p)
		cells[cx*side+cy] = append(cells[cx*side+cy], int32(i))
	}
	g := graph.New(n)
	cand := make([]int32, 0, 64)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pts[i])
		cand = cand[:0]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				x, y := cx+dx, cy+dy
				if x < 0 || y < 0 || x >= side || y >= side {
					continue
				}
				cand = append(cand, cells[x*side+y]...)
			}
		}
		// Merge the ≤9 ascending bucket runs into ascending index order so
		// edges (and the Weights random draws they consume) appear in exactly
		// the order Geometric's j-ascending scan produces.
		insertionSortInt32(cand)
		for _, j32 := range cand {
			j := int(j32)
			if i == j {
				continue
			}
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			dist := math.Sqrt(dx*dx + dy*dy)
			if dist <= radius {
				c := 1 + int64(dist/radius*float64(w.MaxCost-1)+0.5)
				_, d := w.draw(r)
				g.AddEdge(graph.NodeID(i), graph.NodeID(j), c, d)
			}
		}
	}
	s, t := 0, 0
	for i := 1; i < n; i++ {
		if pts[i].x+pts[i].y < pts[s].x+pts[s].y {
			s = i
		}
		if pts[i].x+pts[i].y > pts[t].x+pts[t].y {
			t = i
		}
	}
	ins := graph.Instance{G: g, S: graph.NodeID(s), T: graph.NodeID(t), K: 2,
		Name: fmt.Sprintf("geo-n%d-r%.2f-s%d", n, radius, seed)}
	plantPaths(r, &ins, w, 2)
	return ins
}

// insertionSortInt32 sorts in place. The input is a concatenation of ≤9
// short ascending runs, the regime where insertion sort beats sort.Slice by
// a wide margin and allocates nothing.
func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Expander generates a d-regular-ish expander: the union of d random
// permutations of [0, n), self-loops skipped. Expanders are the adversarial
// large family — no geometry to exploit, diameter O(log n), and edge cuts
// everywhere — so phase-1 Dijkstras see frontier sizes near n. Two disjoint
// s→t paths are planted so k = 2 stays feasible.
func Expander(seed int64, n, d int, w Weights) graph.Instance {
	r := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for p := 0; p < d; p++ {
		perm := r.Perm(n)
		for u, v := range perm {
			if u == v {
				continue
			}
			c, dl := w.draw(r)
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), c, dl)
		}
	}
	ins := graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1), K: 2,
		Name: fmt.Sprintf("expander-n%d-d%d-s%d", n, d, seed)}
	plantPaths(r, &ins, w, 2)
	return ins
}
