package gen

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// fingerprint serialises an instance's full edge list (plus terminals and
// bound) to bytes, so equality means byte-identical generator output.
func fingerprint(ins graph.Instance) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "n=%d m=%d s=%d t=%d k=%d bound=%d\n",
		ins.G.NumNodes(), ins.G.NumEdges(), ins.S, ins.T, ins.K, ins.Bound)
	for _, e := range ins.G.EdgesView() {
		fmt.Fprintf(&buf, "%d %d %d %d %d\n", e.ID, e.From, e.To, e.Cost, e.Delay)
	}
	return buf.Bytes()
}

// TestGeneratorsSeedDeterministic regenerates every random family with the
// same seed — twice back to back and once more after a forced GC — and
// requires byte-identical edge lists each time. This is the invariant the
// detmap/wallclock analyzers exist to protect: a seed fully determines the
// instance, independent of map iteration order or allocator state.
func TestGeneratorsSeedDeterministic(t *testing.T) {
	w := DefaultWeights()
	families := []struct {
		name string
		make func(seed int64) graph.Instance
	}{
		{"ER", func(seed int64) graph.Instance { return ER(seed, 40, 0.15, w) }},
		{"Grid", func(seed int64) graph.Instance { return Grid(seed, 5, 6, w) }},
		{"Layered", func(seed int64) graph.Instance { return Layered(seed, 4, 5, 0.5, w) }},
		{"Geometric", func(seed int64) graph.Instance { return Geometric(seed, 40, 0.3, w) }},
		{"ISP", func(seed int64) graph.Instance { return ISP(seed, 6, 2, w) }},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				want := fingerprint(fam.make(seed))
				got := fingerprint(fam.make(seed))
				if !bytes.Equal(want, got) {
					t.Fatalf("seed %d: second run differs from first", seed)
				}
				runtime.GC()
				got = fingerprint(fam.make(seed))
				if !bytes.Equal(want, got) {
					t.Fatalf("seed %d: run after GC differs from first", seed)
				}
			}
		})
	}
}

// TestPaperConstructionsDeterministic covers the deterministic (seedless)
// paper constructions: repeated calls must agree byte for byte.
func TestPaperConstructionsDeterministic(t *testing.T) {
	f1 := func() []byte {
		ins, _, err := Figure1(10, 8)
		if err != nil {
			t.Fatalf("Figure1: %v", err)
		}
		return fingerprint(ins)
	}
	if !bytes.Equal(f1(), f1()) {
		t.Fatal("Figure1 output differs across calls")
	}
	f2 := func() []byte {
		ins, _, _ := Figure2()
		return fingerprint(ins)
	}
	if !bytes.Equal(f2(), f2()) {
		t.Fatal("Figure2 output differs across calls")
	}
	hc := func() []byte {
		ins, _, err := HardChain(4, 5, 3)
		if err != nil {
			t.Fatalf("HardChain: %v", err)
		}
		return fingerprint(ins)
	}
	if !bytes.Equal(hc(), hc()) {
		t.Fatal("HardChain output differs across calls")
	}
}
