package netsim

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// line builds a 3-hop path graph with the given per-edge delay.
func line(delay int64) (*graph.Digraph, graph.Path) {
	g := graph.New(4)
	e0 := g.AddEdge(0, 1, 1, delay)
	e1 := g.AddEdge(1, 2, 1, delay)
	e2 := g.AddEdge(2, 3, 1, delay)
	return g, graph.Path{Edges: []graph.EdgeID{e0, e1, e2}}
}

func TestUncongestedDelayMatchesAnalytic(t *testing.T) {
	g, p := line(5)
	// Rate far below capacity: no queueing, so every packet's delay is
	// 3·(service + prop) = 3·(1 + 5) = 18.
	st, err := Run(g, Config{ServiceRate: 1, QueueLimit: 100}, []Flow{
		{Paths: []graph.Path{p}, Rate: 0.01, Packets: 200},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 || st.Delivered != 200 {
		t.Fatalf("delivered %d dropped %d", st.Delivered, st.Dropped)
	}
	if math.Abs(st.MeanDelay-18) > 0.5 {
		t.Fatalf("mean delay %v, want ≈18", st.MeanDelay)
	}
	if st.MaxDelay > 18+10 {
		t.Fatalf("max delay %v suggests phantom queueing", st.MaxDelay)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g, p := line(2)
	flows := []Flow{{Paths: []graph.Path{p}, Rate: 0.8, Packets: 500}}
	a, err := Run(g, Config{}, flows, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{}, flows, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, _ := Run(g, Config{}, flows, 43)
	if a == c {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestOverloadDrops(t *testing.T) {
	g, p := line(1)
	// Rate 3× capacity with a small queue must drop heavily.
	st, err := Run(g, Config{ServiceRate: 1, QueueLimit: 8}, []Flow{
		{Paths: []graph.Path{p}, Rate: 3, Packets: 2000},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.LossRate() < 0.3 {
		t.Fatalf("loss %.2f too low under 3x overload", st.LossRate())
	}
	if st.MaxUtilization < 0.8 {
		t.Fatalf("bottleneck utilization %.2f", st.MaxUtilization)
	}
}

// twoDisjoint builds two parallel 2-hop routes.
func twoDisjoint(delay int64) (*graph.Digraph, graph.Path, graph.Path) {
	g := graph.New(4)
	a0 := g.AddEdge(0, 1, 1, delay)
	a1 := g.AddEdge(1, 3, 1, delay)
	b0 := g.AddEdge(0, 2, 1, delay)
	b1 := g.AddEdge(2, 3, 1, delay)
	return g, graph.Path{Edges: []graph.EdgeID{a0, a1}}, graph.Path{Edges: []graph.EdgeID{b0, b1}}
}

func TestMultipathBeatsSinglePathUnderLoad(t *testing.T) {
	g, pa, pb := twoDisjoint(2)
	load := Flow{Rate: 1.6, Packets: 4000} // 160% of one link's capacity
	single := load
	single.Paths = []graph.Path{pa}
	multi := load
	multi.Paths = []graph.Path{pa, pb}

	sSingle, err := Run(g, Config{QueueLimit: 32}, []Flow{single}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sMulti, err := Run(g, Config{QueueLimit: 32}, []Flow{multi}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sMulti.LossRate() >= sSingle.LossRate() && sSingle.LossRate() > 0 {
		t.Fatalf("multipath loss %.3f not better than single %.3f",
			sMulti.LossRate(), sSingle.LossRate())
	}
	if sMulti.P99Delay >= sSingle.P99Delay {
		t.Fatalf("multipath p99 %v not better than single %v",
			sMulti.P99Delay, sSingle.P99Delay)
	}
}

func TestStickySplitting(t *testing.T) {
	g, pa, pb := twoDisjoint(1)
	st, err := Run(g, Config{}, []Flow{
		{Paths: []graph.Path{pa, pb}, Rate: 0.5, Packets: 300, Sticky: true},
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 300 {
		t.Fatalf("delivered %d", st.Delivered)
	}
}

func TestRunRejectsBadFlows(t *testing.T) {
	g, p := line(1)
	cases := []Flow{
		{Paths: []graph.Path{p}, Rate: 0, Packets: 10},
		{Paths: []graph.Path{p}, Rate: 1, Packets: 0},
		{Paths: nil, Rate: 1, Packets: 10},
		{Paths: []graph.Path{{}}, Rate: 1, Packets: 10},
	}
	for i, f := range cases {
		if _, err := Run(g, Config{}, []Flow{f}, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLossRateEmpty(t *testing.T) {
	if (Stats{}).LossRate() != 0 {
		t.Fatal("empty loss rate")
	}
}
