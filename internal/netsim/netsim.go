// Package netsim is a small discrete-event network simulator used to
// measure the REALIZED quality of service of provisioned paths — the
// paper's introduction motivates kRSP with bandwidth aggregation, load
// balance and fault tolerance, and this simulator turns those claims into
// measurable numbers (experiment E13).
//
// Model: each link serves packets FIFO at a fixed service rate and then
// imposes its propagation delay (the kRSP edge delay). Queueing is modeled
// with per-link virtual queues (busy-until timestamps): a packet arriving
// at a link waits max(0, freeAt − now), is dropped if the implied backlog
// exceeds the queue limit, and otherwise departs after service +
// propagation. Traffic is Poisson per flow, split across a flow's paths
// either per-packet (round robin) or by hashing (per-"connection"
// stickiness). Deterministic for a fixed seed.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Config fixes the physical model.
type Config struct {
	// ServiceRate is packets per time unit a link serves (default 1.0).
	ServiceRate float64
	// QueueLimit is the max backlog (in packets) a link tolerates before
	// dropping (default 64).
	QueueLimit float64
	// PropScale converts an edge's Delay weight into propagation time units
	// (default 1.0).
	PropScale float64
}

func (c Config) withDefaults() Config {
	if c.ServiceRate <= 0 {
		c.ServiceRate = 1
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.PropScale <= 0 {
		c.PropScale = 1
	}
	return c
}

// Flow is one traffic source spread over a set of (ideally disjoint)
// provisioned paths.
type Flow struct {
	// Paths carries the provisioned routes; empty paths are rejected.
	Paths []graph.Path
	// Rate is the Poisson arrival rate in packets per time unit.
	Rate float64
	// Packets is how many packets the flow emits.
	Packets int
	// Sticky routes by packet hash (per-connection stickiness) instead of
	// round-robin spraying.
	Sticky bool
}

// Stats summarizes one simulation run.
type Stats struct {
	Delivered int
	Dropped   int
	// Delay statistics over delivered packets.
	MeanDelay float64
	P50Delay  float64
	P99Delay  float64
	MaxDelay  float64
	// MaxUtilization is the busiest link's busy-time fraction.
	MaxUtilization float64
}

// LossRate is Dropped / (Delivered + Dropped), 0 for an empty run.
func (s Stats) LossRate() float64 {
	total := s.Delivered + s.Dropped
	if total == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(total)
}

// event is a packet arriving at the head of its remaining hop list.
type event struct {
	at     float64
	seq    int // tiebreaker for determinism
	packet int
	hop    int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Run simulates the flows over g and returns aggregate statistics.
func Run(g *graph.Digraph, cfg Config, flows []Flow, seed int64) (Stats, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	type packet struct {
		route   []graph.EdgeID
		start   float64
		arrival float64 // at current hop
	}
	var packets []packet
	for fi, f := range flows {
		if f.Rate <= 0 || f.Packets <= 0 {
			return Stats{}, fmt.Errorf("netsim: flow %d needs positive rate and packet count", fi)
		}
		if len(f.Paths) == 0 {
			return Stats{}, fmt.Errorf("netsim: flow %d has no paths", fi)
		}
		for pi, p := range f.Paths {
			if p.Len() == 0 {
				return Stats{}, fmt.Errorf("netsim: flow %d path %d is empty", fi, pi)
			}
		}
		now := 0.0
		for i := 0; i < f.Packets; i++ {
			now += rng.ExpFloat64() / f.Rate
			var route graph.Path
			if f.Sticky {
				route = f.Paths[rng.Intn(len(f.Paths))]
			} else {
				route = f.Paths[i%len(f.Paths)]
			}
			packets = append(packets, packet{route: route.Edges, start: now, arrival: now})
		}
	}

	freeAt := make([]float64, g.NumEdges())
	busy := make([]float64, g.NumEdges())
	service := 1.0 / cfg.ServiceRate

	var h eventHeap
	for i, p := range packets {
		h = append(h, event{at: p.start, seq: i, packet: i, hop: 0})
	}
	heap.Init(&h)

	var delays []float64
	dropped := 0
	seq := len(packets)
	var horizon float64

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		p := &packets[ev.packet]
		id := p.route[ev.hop]
		now := ev.at
		// Virtual queue: implied backlog in packets.
		backlog := math.Max(0, freeAt[id]-now) / service
		if backlog > cfg.QueueLimit {
			dropped++
			continue
		}
		startService := math.Max(now, freeAt[id])
		freeAt[id] = startService + service
		busy[id] += service
		depart := startService + service + float64(g.Edge(id).Delay)*cfg.PropScale
		if depart > horizon {
			horizon = depart
		}
		if ev.hop+1 < len(p.route) {
			p.arrival = depart
			seq++
			heap.Push(&h, event{at: depart, seq: seq, packet: ev.packet, hop: ev.hop + 1})
		} else {
			delays = append(delays, depart-p.start)
		}
	}

	st := Stats{Delivered: len(delays), Dropped: dropped}
	if len(delays) > 0 {
		sort.Float64s(delays)
		var sum float64
		for _, d := range delays {
			sum += d
		}
		st.MeanDelay = sum / float64(len(delays))
		st.P50Delay = quantile(delays, 0.50)
		st.P99Delay = quantile(delays, 0.99)
		st.MaxDelay = delays[len(delays)-1]
	}
	if horizon > 0 {
		for _, b := range busy {
			if u := b / horizon; u > st.MaxUtilization {
				st.MaxUtilization = u
			}
		}
	}
	return st, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
