package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	h := New(5)
	keys := []int64{42, 7, 19, 3, 25}
	for i, k := range keys {
		h.Push(i, k)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, wk := range want {
		_, k := h.Pop()
		if k != wk {
			t.Fatalf("pop key %d, want %d", k, wk)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len %d after draining", h.Len())
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(2, 1) // decrease
	item, k := h.Pop()
	if item != 2 || k != 1 {
		t.Fatalf("got %d/%d, want 2/1", item, k)
	}
}

func TestIncreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Push(0, 99) // increase
	item, _ := h.Pop()
	if item != 1 {
		t.Fatalf("got %d, want 1", item)
	}
}

func TestContainsAndKey(t *testing.T) {
	h := New(2)
	h.Push(1, 5)
	if !h.Contains(1) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if h.Key(1) != 5 {
		t.Fatalf("Key = %d", h.Key(1))
	}
	h.Pop()
	if h.Contains(1) {
		t.Fatal("popped item still contained")
	}
}

func TestReset(t *testing.T) {
	h := New(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("reset incomplete")
	}
	h.Push(2, 3)
	if item, _ := h.Pop(); item != 2 {
		t.Fatal("heap unusable after reset")
	}
}

func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		h := New(n)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(r.Intn(1000) - 500)
			h.Push(i, keys[i])
		}
		// Random decrease-keys.
		for j := 0; j < n/2; j++ {
			i := r.Intn(n)
			keys[i] -= int64(r.Intn(100))
			h.Push(i, keys[i])
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, wk := range sorted {
			if _, k := h.Pop(); k != wk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
