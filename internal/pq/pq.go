// Package pq provides an indexed binary min-heap keyed by int64 priorities.
// It supports decrease-key by item index, which Dijkstra-style algorithms
// need; indices are dense integers (vertex IDs).
package pq

// Heap is an indexed min-heap over items 0..n-1. The zero value is not
// usable; construct with New.
type Heap struct {
	heap []int   // heap[i] = item at heap position i
	pos  []int   // pos[item] = heap position, or -1 if absent
	key  []int64 // key[item] = current priority
}

// New returns a heap able to hold items 0..n-1.
func New(n int) *Heap {
	h := &Heap{
		//lint:allow contracts construction: runs once per workspace, buffers reused across every run
		heap: make([]int, 0, n),
		//lint:allow contracts construction: runs once per workspace, buffers reused across every run
		pos: make([]int, n),
		//lint:allow contracts construction: runs once per workspace, buffers reused across every run
		key: make([]int64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of queued items.
func (h *Heap) Len() int { return len(h.heap) }

// Contains reports whether item is queued.
func (h *Heap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns item's current priority; valid only if Contains(item) or the
// item was previously pushed (keys persist after Pop).
func (h *Heap) Key(item int) int64 { return h.key[item] }

// Push inserts item with the given key, or decreases/updates its key if it
// is already queued. Increasing an existing key is also supported (sift
// both directions), though Dijkstra never needs it.
func (h *Heap) Push(item int, key int64) {
	if h.pos[item] >= 0 {
		h.key[item] = key
		h.up(h.pos[item])
		h.down(h.pos[item])
		return
	}
	h.key[item] = key
	//lint:allow contracts amortized: New/Grow precap the buffer to the item universe, so append stays in place
	h.heap = append(h.heap, item)
	h.pos[item] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// Pop removes and returns the item with minimum key. It panics on an empty
// heap.
func (h *Heap) Pop() (item int, key int64) {
	item = h.heap[0]
	key = h.key[item]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, key
}

// Reset empties the heap for reuse without reallocating.
func (h *Heap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

// Grow ensures the heap can hold items 0..n-1, reallocating the index
// arrays only when n exceeds the current capacity. Queued items survive a
// growing call; workspace reuse across graphs of different sizes depends on
// this (callers Reset between uses, Grow only when the universe expands).
func (h *Heap) Grow(n int) {
	if n <= len(h.pos) {
		return
	}
	//lint:allow contracts amortized: reallocates only when the item universe expands
	pos := make([]int, n)
	//lint:allow contracts amortized: reallocates only when the item universe expands
	key := make([]int64, n)
	copy(pos, h.pos)
	copy(key, h.key)
	for i := len(h.pos); i < n; i++ {
		pos[i] = -1
	}
	h.pos = pos
	h.key = key
}

// Cap reports the size of the item universe the heap currently supports.
func (h *Heap) Cap() int { return len(h.pos) }

func (h *Heap) less(i, j int) bool { return h.key[h.heap[i]] < h.key[h.heap[j]] }

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

//krsp:terminates(i moves strictly toward the heap root each pass)
func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

//krsp:terminates(i strictly descends a heap of ≤ n entries)
func (h *Heap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
