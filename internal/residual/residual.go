// Package residual builds the residual graph G̃ = G_res(P_1..P_k) of
// Definition 6: the input graph with every solution edge replaced by a
// reversed copy carrying negated cost and delay. Unlike the residual graphs
// of [12] and [18], reversed edges keep cost −c(e) (not 0), which is what
// makes both negative costs AND negative delays appear — the situation the
// paper's bicameral-cycle machinery exists to handle.
package residual

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs/rec"
)

// Graph is a residual graph plus the bookkeeping to map residual edges back
// to original edges and to apply residual cycles to solutions.
type Graph struct {
	// R is the residual multigraph. Its vertex set equals the original's.
	R *graph.Digraph
	// Orig is the problem graph G.
	Orig *graph.Digraph
	// origEdge[i] is the original edge behind residual edge i.
	origEdge []graph.EdgeID
	// reversed[i] reports whether residual edge i is a reversed solution
	// edge (negated weights).
	reversed []bool
	// view is the CSR mirror of R, maintained in lockstep: Build packs it
	// once, Update patches orientation bits in place (no re-pack). The
	// bicameral fast path runs its detection kernels on it.
	view *graph.CSR
	// sol is the solution edge set the residual was built against.
	sol graph.EdgeSet
	// fr, when non-nil, records one residual-apply flight-recorder event
	// per successful Update (cycle count, edges flipped).
	fr *rec.Recorder
}

// SetRecorder attaches a flight recorder to the residual maintenance path.
// Nil (the default) records nothing and costs nothing.
func (rg *Graph) SetRecorder(r *rec.Recorder) { rg.fr = r }

// Build constructs G̃ with respect to the unit flow `sol` (the edges used
// by the current k disjoint paths). Residual edge IDs equal original edge
// IDs by construction (edges are inserted in insertion order), which both
// Update and SolutionCycles rely on.
func Build(g *graph.Digraph, sol graph.EdgeSet) *Graph {
	m := g.NumEdges()
	// Clone the input and flip the solution edges in place: FlipEdge is
	// exactly the Definition-6 transform (reverse, negate both weights) and
	// re-inserts at sorted adjacency position, so the result is identical to
	// re-inserting every edge one by one — at a fraction of the allocations.
	r := g.Clone()
	res := &Graph{
		R: r, Orig: g, sol: sol.Clone(),
		origEdge: make([]graph.EdgeID, m),
		reversed: make([]bool, m),
	}
	for i := 0; i < m; i++ {
		id := graph.EdgeID(i)
		res.origEdge[i] = id
		if sol.Has(id) {
			r.FlipEdge(id)
			res.reversed[i] = true
		}
	}
	// Pack the CSR view AFTER the flips: its frozen orientation is the
	// residual's current one, so a fresh Build always starts with clean
	// (all-forward) rev bits regardless of the solution it encodes.
	res.view = graph.NewCSR(r)
	return res
}

// View returns the CSR mirror of R. It tracks every Update incrementally
// (epoch bumps on each flipped edge); treat it as read-only.
func (rg *Graph) View() *graph.CSR { return rg.view }

// Update re-points the residual graph at the solution obtained by applying
// the given edge-disjoint residual cycles (the same set a preceding
// ApplyAll consumed): every residual edge on a cycle flips direction and
// sign in place, and the tracked solution set is updated accordingly.
// Update is the incremental counterpart of Build — after a successful call,
// the receiver is bit-identical (edges, adjacency order, bookkeeping) to
// Build(Orig, newSol) — but costs O(Σ|O_i|·log deg) instead of O(m), which
// is what makes per-iteration residual maintenance in the cancellation loop
// cheap. The cycles are validated first; on error the receiver is
// unchanged.
func (rg *Graph) Update(applied []graph.Cycle) error {
	seen := graph.NewEdgeSet()
	for _, cyc := range applied {
		if err := cyc.Validate(rg.R, false); err != nil {
			return fmt.Errorf("residual: bad cycle: %w", err)
		}
		for _, id := range cyc.Edges {
			if seen.Has(id) {
				return fmt.Errorf("residual: cycles share residual edge %d", id)
			}
			seen.Add(id)
			orig := rg.origEdge[id]
			if rg.reversed[id] {
				if !rg.sol.Has(orig) {
					return fmt.Errorf("residual: cycle removes absent edge %d", orig)
				}
			} else if rg.sol.Has(orig) {
				return fmt.Errorf("residual: cycle re-adds edge %d", orig)
			}
		}
	}
	flipped := int64(0)
	for _, cyc := range applied {
		for _, id := range cyc.Edges {
			orig := rg.origEdge[id]
			if rg.reversed[id] {
				rg.sol.Remove(orig)
			} else {
				rg.sol.Add(orig)
			}
			rg.reversed[id] = !rg.reversed[id]
			rg.R.FlipEdge(id)
			rg.view.Flip(id)
			flipped++
		}
	}
	rg.fr.Record(rec.KindResidualApply, int64(len(applied)), flipped, 0, 0)
	return nil
}

// OrigEdge maps a residual edge ID to its originating edge ID.
func (rg *Graph) OrigEdge(id graph.EdgeID) graph.EdgeID { return rg.origEdge[id] }

// Reversed reports whether residual edge id is a reversed solution edge.
func (rg *Graph) Reversed(id graph.EdgeID) bool { return rg.reversed[id] }

// Solution returns (a copy of) the solution edge set this residual graph
// was built against.
func (rg *Graph) Solution() graph.EdgeSet { return rg.sol.Clone() }

// ReversedSeeds returns the set of vertices incident to reversed edges.
// Any residual cycle with negative total delay or negative total cost must
// traverse at least one reversed edge (original weights are nonnegative),
// so cycle searches need only be seeded at these vertices.
func (rg *Graph) ReversedSeeds() []graph.NodeID {
	seen := make([]bool, rg.R.NumNodes())
	var out []graph.NodeID
	for i, rev := range rg.reversed {
		if !rev {
			continue
		}
		e := rg.R.Edge(graph.EdgeID(i))
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// CycleCost and CycleDelay measure a residual cycle in residual weights
// (reversed edges already negated).
func (rg *Graph) CycleCost(c graph.Cycle) int64  { return c.Cost(rg.R) }
func (rg *Graph) CycleDelay(c graph.Cycle) int64 { return c.Delay(rg.R) }

// Apply performs one cycle cancellation (Proposition 7): it returns the
// edge set of {P_1..P_k} ⊕ O for a cycle O of the residual graph. Forward
// residual edges enter the solution; reversed residual edges remove their
// originals. The cycle must be valid against the residual this Graph was
// built from; violations return an error (they indicate a stale cycle).
func (rg *Graph) Apply(cycle graph.Cycle) (graph.EdgeSet, error) {
	if err := cycle.Validate(rg.R, false); err != nil {
		return graph.EdgeSet{}, fmt.Errorf("residual: bad cycle: %w", err)
	}
	next := rg.sol.Clone()
	for _, id := range cycle.Edges {
		orig := rg.origEdge[id]
		if rg.reversed[id] {
			if !next.Has(orig) {
				return graph.EdgeSet{}, fmt.Errorf("residual: cycle removes edge %d twice", orig)
			}
			next.Remove(orig)
		} else {
			if next.Has(orig) {
				return graph.EdgeSet{}, fmt.Errorf("residual: cycle adds edge %d twice", orig)
			}
			next.Add(orig)
		}
	}
	return next, nil
}

// ApplyAll cancels a set of edge-disjoint residual cycles in one step
// (Proposition 7 covers sets). Residual edges map bijectively to original
// edges, so edge-disjoint cycles can never conflict on an original edge.
func (rg *Graph) ApplyAll(cycles []graph.Cycle) (graph.EdgeSet, error) {
	next := rg.sol.Clone()
	seen := graph.NewEdgeSet()
	for _, cyc := range cycles {
		if err := cyc.Validate(rg.R, false); err != nil {
			return graph.EdgeSet{}, fmt.Errorf("residual: bad cycle: %w", err)
		}
		for _, id := range cyc.Edges {
			if seen.Has(id) {
				return graph.EdgeSet{}, fmt.Errorf("residual: cycles share residual edge %d", id)
			}
			seen.Add(id)
			orig := rg.origEdge[id]
			if rg.reversed[id] {
				if !next.Has(orig) {
					return graph.EdgeSet{}, fmt.Errorf("residual: cycle removes absent edge %d", orig)
				}
				next.Remove(orig)
			} else {
				if next.Has(orig) {
					return graph.EdgeSet{}, fmt.Errorf("residual: cycle re-adds edge %d", orig)
				}
				next.Add(orig)
			}
		}
	}
	return next, nil
}

// SolutionCycles computes {P*} ⊕ {P̄} for two solutions given as edge sets:
// by Proposition 8 the result is exactly a set of edge-disjoint cycles of
// the residual graph built against `cur`. Returned cycles live in rg.R
// (i.e. edges of other \ cur appear forward, edges of cur \ other appear
// reversed). Used by tests of Lemma 9 and by the exact branch & bound.
func (rg *Graph) SolutionCycles(other graph.EdgeSet) ([]graph.Cycle, error) {
	// Residual edge for original e: same ID by construction.
	var resEdges []graph.EdgeID
	for _, e := range rg.Orig.EdgesView() {
		inCur := rg.sol.Has(e.ID)
		inOther := other.Has(e.ID)
		if inCur == inOther {
			continue // shared or absent: cancels in ⊕
		}
		// other-only → forward edge in residual; cur-only → reversed.
		resEdges = append(resEdges, e.ID)
	}
	// Peel cycles: each vertex is balanced in the residual sub-multigraph.
	// avail is dense-indexed by vertex so the start-vertex scan below walks
	// ascending IDs; a map here would make cycle order hash-dependent.
	avail := make([][]graph.EdgeID, rg.R.NumNodes())
	for _, id := range resEdges {
		re := rg.R.Edge(id)
		avail[re.From] = append(avail[re.From], id)
	}
	var cycles []graph.Cycle
	for {
		var start graph.NodeID = -1
		for v, edges := range avail {
			if len(edges) > 0 {
				start = graph.NodeID(v)
				break
			}
		}
		if start < 0 {
			break
		}
		var walk []graph.EdgeID
		cur := start
		for {
			edges := avail[cur]
			if len(edges) == 0 {
				return nil, fmt.Errorf("residual: symmetric difference is not a union of cycles (stuck at %d)", cur)
			}
			id := edges[len(edges)-1]
			avail[cur] = edges[:len(edges)-1]
			walk = append(walk, id)
			cur = rg.R.Edge(id).To
			if cur == start {
				break
			}
			if len(walk) > len(resEdges) {
				return nil, fmt.Errorf("residual: cycle peel exceeded budget")
			}
		}
		cycles = append(cycles, flow.SplitClosedWalk(rg.R, walk)...)
	}
	return cycles, nil
}
