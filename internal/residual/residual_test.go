package residual

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/shortest"
)

func diamond() *graph.Digraph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 2) // e0
	g.AddEdge(0, 2, 2, 1) // e1
	g.AddEdge(1, 3, 3, 4) // e2
	g.AddEdge(2, 3, 4, 3) // e3
	g.AddEdge(1, 2, 5, 5) // e4
	return g
}

func TestBuildNegatesSolutionEdges(t *testing.T) {
	g := diamond()
	sol := graph.NewEdgeSet(0, 2) // path 0→1→3
	rg := Build(g, sol)
	if rg.R.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	for _, e := range g.Edges() {
		re := rg.R.Edge(e.ID)
		if sol.Has(e.ID) {
			if re.From != e.To || re.To != e.From || re.Cost != -e.Cost || re.Delay != -e.Delay {
				t.Fatalf("edge %d not reversed/negated: %+v", e.ID, re)
			}
			if !rg.Reversed(e.ID) {
				t.Fatalf("edge %d not flagged reversed", e.ID)
			}
		} else {
			if re != e {
				t.Fatalf("edge %d altered: %+v", e.ID, re)
			}
			if rg.Reversed(e.ID) {
				t.Fatalf("edge %d wrongly flagged", e.ID)
			}
		}
		if rg.OrigEdge(e.ID) != e.ID {
			t.Fatal("orig mapping broken")
		}
	}
}

func TestReversedSeeds(t *testing.T) {
	g := diamond()
	rg := Build(g, graph.NewEdgeSet(0, 2))
	seeds := rg.ReversedSeeds()
	want := map[graph.NodeID]bool{0: true, 1: true, 3: true}
	if len(seeds) != len(want) {
		t.Fatalf("seeds = %v", seeds)
	}
	for _, v := range seeds {
		if !want[v] {
			t.Fatalf("unexpected seed %d", v)
		}
	}
	// No solution → no seeds.
	if s := Build(g, graph.NewEdgeSet()).ReversedSeeds(); len(s) != 0 {
		t.Fatalf("seeds = %v", s)
	}
}

func TestApplyCycleSwapsPaths(t *testing.T) {
	g := diamond()
	// Current solution: 0→1→3 via e0,e2. Residual cycle: forward e1 (0→2),
	// forward e3 (2→3), reversed e2 (3→1), reversed e0 (1→0) — swaps the
	// solution to 0→2→3.
	sol := graph.NewEdgeSet(0, 2)
	rg := Build(g, sol)
	cyc := graph.Cycle{Edges: []graph.EdgeID{1, 3, 2, 0}}
	if err := cyc.Validate(rg.R, true); err != nil {
		t.Fatal(err)
	}
	next, err := rg.Apply(cyc)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []graph.EdgeID{1, 3}
	got := next.IDs()
	if len(got) != 2 || got[0] != wantIDs[0] || got[1] != wantIDs[1] {
		t.Fatalf("next = %v", got)
	}
	// Cost/delay bookkeeping: Δcost = cycle residual cost.
	dc := rg.CycleCost(cyc)
	dd := rg.CycleDelay(cyc)
	if g.TotalCost(got)-g.TotalCost(sol.IDs()) != dc {
		t.Fatalf("cost delta %d vs cycle %d", g.TotalCost(got)-g.TotalCost(sol.IDs()), dc)
	}
	if g.TotalDelay(got)-g.TotalDelay(sol.IDs()) != dd {
		t.Fatalf("delay delta mismatch %d", dd)
	}
}

func TestApplyRejectsStaleCycle(t *testing.T) {
	g := diamond()
	rg := Build(g, graph.NewEdgeSet(0, 2))
	// Cycle that "adds" e0, but e0 is already in the solution — in the
	// residual built against sol, edge 0 is reversed, so a cycle listing it
	// as forward cannot validate contiguously; craft a double-remove case
	// instead via a fake duplicate traversal.
	bad := graph.Cycle{Edges: []graph.EdgeID{99}}
	if _, err := rg.Apply(bad); err == nil {
		t.Fatal("bogus cycle accepted")
	}
}

func TestProposition7_ApplyPreservesKDisjointFlow(t *testing.T) {
	// Property: applying any valid residual cycle to a valid k-flow yields
	// a valid k-flow (Proposition 7).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < 4*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(10)), int64(r.Intn(10)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		k := 1 + r.Intn(2)
		if flow.MaxDisjointPaths(g, s, tt) < k {
			return true // skip
		}
		fl, err := flow.MinCostKFlow(g, s, tt, k, shortest.CostWeight)
		if err != nil {
			return false
		}
		rg := Build(g, fl.Edges)
		// Find any cycle in the residual graph (by weighting all edges −1
		// any cycle is "negative"); skip if none.
		cyc, found := shortest.NegativeCycle(rg.R, func(e graph.Edge) int64 { return -1 })
		if !found {
			return true
		}
		next, err := rg.Apply(cyc)
		if err != nil {
			return false
		}
		paths, _, err := flow.Decompose(g, next, s, tt, k)
		if err != nil {
			return false
		}
		ins := graph.Instance{G: g, S: s, T: tt, K: k, Bound: 1 << 40}
		return (graph.Solution{Paths: paths}).Validate(ins) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProposition8_SolutionCycles(t *testing.T) {
	// {P*} ⊕ {P̄} is exactly a set of edge-disjoint cycles whose totals
	// equal the cost/delay difference of the two solutions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < 4*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(10)), int64(r.Intn(10)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		k := 1 + r.Intn(2)
		if flow.MaxDisjointPaths(g, s, tt) < k {
			return true
		}
		// Two different k-flows: min-cost and min-delay.
		f1, err1 := flow.MinCostKFlow(g, s, tt, k, shortest.CostWeight)
		f2, err2 := flow.MinCostKFlow(g, s, tt, k, shortest.DelayWeight)
		if err1 != nil || err2 != nil {
			return false
		}
		rg := Build(g, f1.Edges)
		cycles, err := rg.SolutionCycles(f2.Edges)
		if err != nil {
			return false
		}
		var dc, dd int64
		usedRes := graph.NewEdgeSet()
		for _, c := range cycles {
			if c.Validate(rg.R, false) != nil {
				return false
			}
			for _, id := range c.Edges {
				if usedRes.Has(id) {
					return false // cycles must be edge-disjoint
				}
				usedRes.Add(id)
			}
			dc += rg.CycleCost(c)
			dd += rg.CycleDelay(c)
		}
		wantDC := f2.Cost(g) - f1.Cost(g)
		wantDD := f2.Delay(g) - f1.Delay(g)
		return dc == wantDC && dd == wantDD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma9_NegativeDelayCycleExists(t *testing.T) {
	// If the current solution's delay exceeds that of another solution,
	// the residual graph contains a negative-delay cycle.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		g := graph.New(n)
		for i := 0; i < 4*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), int64(r.Intn(10)), int64(r.Intn(10)))
			}
		}
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		k := 1 + r.Intn(2)
		if flow.MaxDisjointPaths(g, s, tt) < k {
			return true
		}
		fc, _ := flow.MinCostKFlow(g, s, tt, k, shortest.CostWeight)
		fd, _ := flow.MinCostKFlow(g, s, tt, k, shortest.DelayWeight)
		if fc.Delay(g) <= fd.Delay(g) {
			return true // current solution already delay-minimal, skip
		}
		rg := Build(g, fc.Edges)
		_, found := shortest.NegativeCycle(rg.R, shortest.DelayWeight)
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionAccessor(t *testing.T) {
	g := diamond()
	sol := graph.NewEdgeSet(0, 2)
	rg := Build(g, sol)
	got := rg.Solution()
	got.Remove(0)
	if !rg.Solution().Has(0) {
		t.Fatal("Solution() must return a copy")
	}
}
