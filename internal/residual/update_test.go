package residual_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

// requireSameResidual asserts the two residual graphs are bit-identical:
// same edges (endpoints, weights), same adjacency ORDER (searches iterate
// adjacency, so order differences would change solver behaviour), same
// reversed flags and tracked solution. This is the contract Update promises
// against a fresh Build.
func requireSameResidual(t *testing.T, got, want *residual.Graph) {
	t.Helper()
	if got.R.NumNodes() != want.R.NumNodes() || got.R.NumEdges() != want.R.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			got.R.NumNodes(), want.R.NumNodes(), got.R.NumEdges(), want.R.NumEdges())
	}
	for id := 0; id < got.R.NumEdges(); id++ {
		ge, we := got.R.Edge(graph.EdgeID(id)), want.R.Edge(graph.EdgeID(id))
		if ge != we {
			t.Fatalf("edge %d: got %+v want %+v", id, ge, we)
		}
		if got.Reversed(graph.EdgeID(id)) != want.Reversed(graph.EdgeID(id)) {
			t.Fatalf("edge %d: reversed flag differs", id)
		}
	}
	for v := 0; v < got.R.NumNodes(); v++ {
		gOut, wOut := got.R.Out(graph.NodeID(v)), want.R.Out(graph.NodeID(v))
		if len(gOut) != len(wOut) {
			t.Fatalf("node %d: out-degree %d vs %d", v, len(gOut), len(wOut))
		}
		for i := range gOut {
			if gOut[i] != wOut[i] {
				t.Fatalf("node %d: out adjacency order differs at %d: %d vs %d", v, i, gOut[i], wOut[i])
			}
		}
		gIn, wIn := got.R.In(graph.NodeID(v)), want.R.In(graph.NodeID(v))
		if len(gIn) != len(wIn) {
			t.Fatalf("node %d: in-degree %d vs %d", v, len(gIn), len(wIn))
		}
		for i := range gIn {
			if gIn[i] != wIn[i] {
				t.Fatalf("node %d: in adjacency order differs at %d", v, i)
			}
		}
	}
	gs, ws := got.Solution(), want.Solution()
	if gs.Len() != ws.Len() {
		t.Fatalf("solution size %d vs %d", gs.Len(), ws.Len())
	}
	for _, id := range gs.IDs() {
		if !ws.Has(id) {
			t.Fatalf("solution sets differ at edge %d", id)
		}
	}
	// The CSR views must mirror their residual Digraphs exactly — same
	// edges, weights and merged adjacency order — whether they got there
	// incrementally (got: Update flips) or by a fresh pack (want: Build).
	if err := got.View().Validate(got.R); err != nil {
		t.Fatalf("updated CSR view drifted: %v", err)
	}
	if err := want.View().Validate(want.R); err != nil {
		t.Fatalf("fresh CSR view drifted: %v", err)
	}
}

// diffUpdate drives one differential check on an instance: build the
// residual against the min-cost k-flow, Update it with the cycles leading
// to the min-delay k-flow (Proposition 8 supplies them), and require the
// result to be bit-identical to a fresh Build against that flow.
func diffUpdate(t *testing.T, ins graph.Instance, k int) bool {
	t.Helper()
	g := ins.G
	if flow.MaxDisjointPaths(g, ins.S, ins.T) < k {
		return false
	}
	f1, err1 := flow.MinCostKFlow(g, ins.S, ins.T, k, shortest.CostWeight)
	f2, err2 := flow.MinCostKFlow(g, ins.S, ins.T, k, shortest.DelayWeight)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: flows failed: %v %v", ins.Name, err1, err2)
	}
	rg := residual.Build(g, f1.Edges)
	cycles, err := rg.SolutionCycles(f2.Edges)
	if err != nil {
		t.Fatalf("%s: SolutionCycles: %v", ins.Name, err)
	}
	next, err := rg.ApplyAll(cycles)
	if err != nil {
		t.Fatalf("%s: ApplyAll: %v", ins.Name, err)
	}
	if err := rg.Update(cycles); err != nil {
		t.Fatalf("%s: Update: %v", ins.Name, err)
	}
	requireSameResidual(t, rg, residual.Build(g, next))
	// A second hop back completes the round trip: flipping the same original
	// edges again must land exactly on the f1 residual.
	back, err := rg.SolutionCycles(f1.Edges)
	if err != nil {
		t.Fatalf("%s: SolutionCycles back: %v", ins.Name, err)
	}
	if err := rg.Update(back); err != nil {
		t.Fatalf("%s: Update back: %v", ins.Name, err)
	}
	requireSameResidual(t, rg, residual.Build(g, f1.Edges))
	return true
}

// TestUpdateMatchesBuild runs the differential over every generator family
// (ER, grid, layered DAG, geometric/Waxman, ring-of-trees ISP) at several
// seeds, so the incremental path is exercised across sparse, dense, layered
// and hub-heavy adjacency shapes.
func TestUpdateMatchesBuild(t *testing.T) {
	mks := []func(seed int64) graph.Instance{
		func(s int64) graph.Instance { return gen.ER(s, 16+int(s%12), 0.25, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Grid(s, 4, 4+int(s%3), gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Layered(s, 4, 4, 0.6, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Geometric(s, 18, 0.4, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.ISP(s, 8, 2, gen.DefaultWeights()) },
	}
	checked := 0
	for round := 0; round < 40; round++ {
		ins := mks[round%len(mks)](int64(round))
		for k := 1; k <= 3; k++ {
			if diffUpdate(t, ins, k) {
				checked++
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d differential checks ran; generators too infeasible", checked)
	}
}

// TestUpdateRejectsBadCyclesUntouched: a failed Update must leave the
// receiver exactly as it was.
func TestUpdateRejectsBadCyclesUntouched(t *testing.T) {
	ins := gen.ER(7, 14, 0.3, gen.DefaultWeights())
	g := ins.G
	k := 2
	if flow.MaxDisjointPaths(g, ins.S, ins.T) < k {
		t.Skip("instance infeasible for k=2")
	}
	f1, err := flow.MinCostKFlow(g, ins.S, ins.T, k, shortest.CostWeight)
	if err != nil {
		t.Fatal(err)
	}
	rg := residual.Build(g, f1.Edges)
	bad := []graph.Cycle{{Edges: []graph.EdgeID{0, 0}}}
	if err := rg.Update(bad); err == nil {
		t.Fatal("duplicate-edge cycle accepted")
	}
	requireSameResidual(t, rg, residual.Build(g, f1.Edges))
}

// FuzzUpdateMatchesBuild fuzzes the differential over random dense
// multigraphs: whatever instance the bytes decode to, Update must agree
// with Build.
func FuzzUpdateMatchesBuild(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3))
	f.Add(int64(42), uint8(9), uint8(4))
	f.Add(int64(-7), uint8(12), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mult uint8) {
		n := 4 + int(nRaw%12)
		density := 0.15 + float64(mult%5)*0.1
		ins := gen.ER(seed, n, density, gen.DefaultWeights())
		for k := 1; k <= 2; k++ {
			diffUpdate(t, ins, k)
		}
	})
}
