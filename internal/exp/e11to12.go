package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RunE11 measures how Solve's wall-clock time grows with instance size —
// the practical counterpart of the paper's pseudo-polynomial bound
// O(D·Σc·Σd·t_bc), which the fast-path engineering beats by orders of
// magnitude on non-adversarial inputs.
func RunE11(cfg Config) (*Table, error) {
	t := NewTable("E11: runtime scaling with instance size",
		"n", "~m", "inst", "mean time", "p95 time", "mean iters", "mean c/LB")
	sizes := []int{20, 40, 80}
	if !cfg.Quick {
		sizes = []int{20, 40, 80, 160, 320}
	}
	for _, n := range sizes {
		var times, iters, ratios []float64
		edges := 0
		count := 0
		for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
			mk := func(s int64) graph.Instance {
				// Keep average degree fixed (~6) so m grows linearly.
				ins := gen.ER(s, n, 6.0/float64(n-1), gen.DefaultWeights())
				ins.K = 2
				return ins
			}
			ins, ok := boundedInstance(mk, seed+int64(n)*13, 1.3)
			if !ok {
				continue
			}
			var res core.Result
			dur, err := measure(func() error {
				var e error
				res, e = core.Solve(ins, core.Options{})
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("E11: n=%d: %w", n, err)
			}
			count++
			edges += ins.G.NumEdges()
			times = append(times, dur.Seconds())
			iters = append(iters, float64(res.Stats.Iterations))
			ratios = append(ratios, ratio(res.Cost, res.LowerBound))
		}
		if count == 0 {
			continue
		}
		t.Add(n, edges/count, count, fmtDurationSec(Mean(times)),
			fmtDurationSec(Percentile(times, 95)), Mean(iters), Mean(ratios))
	}
	t.Note("degree held at ~6 so edge count grows linearly with n")
	return t, nil
}

// RunE12 measures the parallel speedup of SolveBatch — the SDN-controller
// workload of re-provisioning many tunnel pairs at once.
func RunE12(cfg Config) (*Table, error) {
	t := NewTable("E12: parallel batch speedup (SolveBatch)",
		"workers", "batch", "wall time", "speedup", "all solved")
	n := 30
	batchSize := 4 * cfg.seeds()
	if cfg.Quick {
		n = 16
	}
	var instances []graph.Instance
	for seed := int64(0); len(instances) < batchSize && seed < int64(batchSize*8); seed++ {
		mk := func(s int64) graph.Instance {
			ins := gen.ER(s, n, 0.2, gen.DefaultWeights())
			ins.K = 2
			return ins
		}
		if ins, ok := boundedInstance(mk, seed+60000, 1.3); ok {
			instances = append(instances, ins)
		}
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("E12: no feasible instances generated")
	}
	maxWorkers := runtime.GOMAXPROCS(0)
	workerSet := []int{1, 2, 4}
	if maxWorkers >= 8 {
		workerSet = append(workerSet, 8)
	}
	var base float64
	for _, w := range workerSet {
		start := time.Now()
		items := core.SolveBatch(instances, core.Options{}, w)
		wall := time.Since(start).Seconds()
		solved := 0
		for _, it := range items {
			if it.Err == nil {
				solved++
			}
		}
		if w == 1 {
			base = wall
		}
		speedup := 1.0
		if wall > 0 {
			speedup = base / wall
		}
		t.Add(w, len(instances), fmtDurationSec(wall),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d/%d", solved, len(instances)))
	}
	t.Note("speedup is relative to workers=1 on the same batch; GOMAXPROCS=%d on this host", maxWorkers)
	return t, nil
}
