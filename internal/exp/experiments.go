package exp

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Config tunes an experiment run.
type Config struct {
	// Seeds is the number of random instances per cell (default 10; Quick
	// uses 3).
	Seeds int
	// Quick shrinks instance sizes and seed counts for smoke runs and
	// benchmarks.
	Quick bool
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 3
	}
	return 10
}

// Experiment is one reproducible experiment from DESIGN.md §5.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Approximation quality vs exact optimum (Lemma 3 / Thm 4)", RunE1},
		{"E2", "Phase-1 invariant delay/D + cost/C_LP ≤ 2 (Lemma 5)", RunE2},
		{"E3", "Figure 1 pathology: the cost cap in Definition 10", RunE3},
		{"E4", "Auxiliary graph construction and projection (Lemma 15)", RunE4},
		{"E5", "Scaling tradeoff: quality and work vs ε (Theorem 4)", RunE5},
		{"E6", "Value of kRSP vs baselines across k", RunE6},
		{"E7", "Robustness across topologies", RunE7},
		{"E8", "Ablation: bicameral engines and budget schedules", RunE8},
		{"E9", "Infeasibility detection", RunE9},
		{"E10", "Delay-bound tightness sweep", RunE10},
		{"E11", "Runtime scaling with instance size", RunE11},
		{"E12", "Parallel batch speedup", RunE12},
		{"E13", "Realized QoS under load (netsim)", RunE13},
	}
}

// Lookup finds an experiment by ID (case-sensitive), or nil.
func Lookup(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			ex := e
			return &ex
		}
	}
	return nil
}

// measure runs f and returns its wall-clock duration.
func measure(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

func withBound(ins graph.Instance, slack float64) (graph.Instance, bool) {
	return gen.WithBound(ins, slack)
}

// ratio guards division by zero for cost ratios.
func ratio(num, den int64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return float64(num)
	}
	return float64(num) / float64(den)
}

// boundedInstance draws a generated instance with a feasible bound at the
// given slack, retrying across seeds; ok=false after exhausting retries.
func boundedInstance(mk func(seed int64) graph.Instance, seed int64, slack float64) (graph.Instance, bool) {
	for attempt := int64(0); attempt < 8; attempt++ {
		ins := mk(seed*1000 + attempt)
		if bounded, ok := withBound(ins, slack); ok {
			return bounded, true
		}
	}
	return graph.Instance{}, false
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
