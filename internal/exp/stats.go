package exp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values (0 otherwise).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p ∈ [0,100]) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
