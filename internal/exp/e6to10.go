package exp

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// RunE6 compares the paper's algorithm against every baseline across k,
// measuring cost (normalized to the delay-oblivious min-sum lower bound)
// and delay-bound violations — the multipath value proposition from the
// paper's introduction.
func RunE6(cfg Config) (*Table, error) {
	t := NewTable("E6: algorithms vs baselines across k",
		"k", "algo", "inst", "mean c/minsum", "feasible", "fails")
	n := 24
	if cfg.Quick {
		n = 14
	}
	ks := []int{1, 2, 3, 4}
	if cfg.Quick {
		ks = []int{1, 2, 3}
	}
	for _, k := range ks {
		// Collect per-algorithm aggregates over shared instances.
		type agg struct {
			ratios   []float64
			feasible int
			fails    int
			runs     int
		}
		aggs := map[string]*agg{}
		order := []string{}
		for _, b := range baseline.All() {
			aggs[b.Name] = &agg{}
			order = append(order, b.Name)
		}
		for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
			mk := func(s int64) graph.Instance {
				ins := gen.ER(s, n, 0.2, gen.DefaultWeights())
				ins.K = k
				return ins
			}
			ins, ok := boundedInstance(mk, seed+int64(k*1000), 1.5)
			if !ok {
				continue
			}
			ms, err := baseline.MinSum(ins)
			if err != nil {
				continue
			}
			for _, b := range baseline.All() {
				a := aggs[b.Name]
				a.runs++
				r, err := b.Run(ins)
				if err != nil {
					a.fails++
					continue
				}
				a.ratios = append(a.ratios, ratio(r.Cost, ms.Cost))
				if r.Feasible {
					a.feasible++
				}
			}
		}
		for _, name := range order {
			a := aggs[name]
			if a.runs == 0 {
				continue
			}
			t.Add(k, name, a.runs, Mean(a.ratios),
				fmt.Sprintf("%d/%d", a.feasible, a.runs),
				fmt.Sprintf("%d/%d", a.fails, a.runs))
		}
	}
	t.Note("minsum ignores the delay bound — its cost lower-bounds every algorithm, and its 'feasible' column shows how often delay-oblivious routing happens to meet the SLA")
	return t, nil
}

// RunE7 fixes the algorithm and sweeps topologies.
func RunE7(cfg Config) (*Table, error) {
	t := NewTable("E7: robustness across topologies",
		"topology", "inst", "mean c/LB", "max c/LB", "delay ok", "mean iters", "mean time")
	quick := cfg.Quick
	tops := []struct {
		name string
		mk   func(seed int64) graph.Instance
	}{
		{"er", func(s int64) graph.Instance {
			n := 24
			if quick {
				n = 14
			}
			return gen.ER(s, n, 0.2, gen.DefaultWeights())
		}},
		{"grid", func(s int64) graph.Instance {
			r, c := 5, 5
			if quick {
				r, c = 4, 4
			}
			return gen.Grid(s, r, c, gen.DefaultWeights())
		}},
		{"layered", func(s int64) graph.Instance {
			return gen.Layered(s, 5, 4, 0.5, gen.DefaultWeights())
		}},
		{"geometric", func(s int64) graph.Instance {
			n := 24
			if quick {
				n = 16
			}
			return gen.Geometric(s, n, 0.35, gen.DefaultWeights())
		}},
		{"isp", func(s int64) graph.Instance {
			return gen.ISP(s, 8, 2, gen.DefaultWeights())
		}},
	}
	for _, top := range tops {
		var ratios, iters, times []float64
		okDelay, count := 0, 0
		for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
			ins, ok := boundedInstance(top.mk, seed+4242, 1.4)
			if !ok {
				continue
			}
			var res core.Result
			dur, err := measure(func() error {
				var e error
				res, e = core.Solve(ins, core.Options{})
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("E7: %s: %w", top.name, err)
			}
			count++
			ratios = append(ratios, ratio(res.Cost, res.LowerBound))
			iters = append(iters, float64(res.Stats.Iterations))
			times = append(times, dur.Seconds())
			if res.Delay <= ins.Bound {
				okDelay++
			}
		}
		if count == 0 {
			continue
		}
		t.Add(top.name, count, Mean(ratios), Max(ratios),
			fmt.Sprintf("%d/%d", okDelay, count), Mean(iters),
			fmtDurationSec(Mean(times)))
	}
	t.Note("c/LB compares against the certified LP lower bound (≤ OPT), so values ≤ 2 verify the Lemma 3 factor without exact solving")
	return t, nil
}

// RunE8 ablates the bicameral search: combinatorial vs LP engine, and
// doubling vs unit-step (Algorithm 3) budget schedules.
func RunE8(cfg Config) (*Table, error) {
	t := NewTable("E8: bicameral engine ablation",
		"engine", "schedule", "inst", "mean c/LB", "delay ok", "mean time", "agree")
	n := 9
	variants := []struct {
		name     string
		schedule string
		opt      core.Options
	}{
		{"combinatorial", "doubling", core.Options{}},
		{"combinatorial", "unit (Alg. 3)", core.Options{FullSweep: true}},
		{"lp", "doubling", core.Options{Engine: bicameral.EngineLP}},
		{"minratio [18]", "parametric", core.Options{Engine: bicameral.EngineMinRatio}},
	}
	type outcome struct {
		cost  int64
		valid bool
	}
	results := make([][]outcome, len(variants))
	var instances []graph.Instance
	for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
		mk := func(s int64) graph.Instance {
			ins := gen.ER(s, n, 0.3, gen.Weights{MaxCost: 6, MaxDelay: 6, Correlation: -0.8})
			ins.K = 2
			return ins
		}
		ins, ok := boundedInstance(mk, seed+7777, 1.3)
		if ok {
			instances = append(instances, ins)
		}
	}
	rows := make([]struct {
		ratios, times []float64
		okDelay       int
	}, len(variants))
	for i, v := range variants {
		results[i] = make([]outcome, len(instances))
		for j, ins := range instances {
			var res core.Result
			dur, err := measure(func() error {
				var e error
				res, e = core.Solve(ins, v.opt)
				return e
			})
			if err != nil {
				continue
			}
			results[i][j] = outcome{res.Cost, true}
			rows[i].ratios = append(rows[i].ratios, ratio(res.Cost, res.LowerBound))
			rows[i].times = append(rows[i].times, dur.Seconds())
			if res.Delay <= ins.Bound {
				rows[i].okDelay++
			}
		}
	}
	for i, v := range variants {
		agree := 0
		for j := range instances {
			if results[i][j].valid && results[0][j].valid &&
				results[i][j].cost == results[0][j].cost {
				agree++
			}
		}
		t.Add(v.name, v.schedule, len(rows[i].ratios), Mean(rows[i].ratios),
			fmt.Sprintf("%d/%d", rows[i].okDelay, len(instances)),
			fmtDurationSec(Mean(rows[i].times)),
			fmt.Sprintf("%d/%d", agree, len(instances)))
	}
	t.Note("'agree' counts instances whose final cost matches the combinatorial/doubling reference")
	t.Note("minratio is the pre-bicameral technique of [18] (reversed edges costed 0): it may fall back to phase 1 where the bicameral engines keep improving")
	return t, nil
}

// RunE9 verifies infeasibility detection: instances with too few disjoint
// paths and instances with unreachable delay bounds must produce the
// matching typed errors (Algorithm 1 step 2a).
func RunE9(cfg Config) (*Table, error) {
	t := NewTable("E9: infeasibility detection",
		"mode", "inst", "correct verdicts", "mean time")
	n := 16
	if cfg.Quick {
		n = 10
	}
	modes := []struct {
		name string
		mk   func(seed int64) (graph.Instance, error)
	}{
		{"k > max-flow", func(seed int64) (graph.Instance, error) {
			ins := gen.ER(seed, n, 0.15, gen.DefaultWeights())
			feas, err := core.CheckFeasible(withHugeBound(ins))
			if err != nil {
				return ins, err
			}
			ins.K = feas.MaxDisjoint + 1
			ins.Bound = 1 << 30
			return ins, nil
		}},
		{"D < min delay", func(seed int64) (graph.Instance, error) {
			ins := gen.ER(seed, n, 0.2, gen.DefaultWeights())
			ins.K = 2
			feas, err := core.CheckFeasible(withHugeBound(ins))
			if err != nil || feas.MaxDisjoint < 2 {
				return ins, fmt.Errorf("skip")
			}
			ins.Bound = feas.MinDelay - 1
			if ins.Bound < 0 {
				ins.Bound = 0
			}
			return ins, nil
		}},
	}
	for _, mode := range modes {
		correct, count := 0, 0
		var times []float64
		for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
			ins, err := mode.mk(seed + 31000)
			if err != nil {
				continue
			}
			count++
			dur, solveErr := measure(func() error {
				_, e := core.Solve(ins, core.Options{})
				return e
			})
			times = append(times, dur.Seconds())
			switch mode.name {
			case "k > max-flow":
				if errors.Is(solveErr, core.ErrNoKPaths) {
					correct++
				}
			case "D < min delay":
				if errors.Is(solveErr, core.ErrDelayInfeasible) {
					correct++
				}
			}
		}
		if count == 0 {
			continue
		}
		t.Add(mode.name, count, fmt.Sprintf("%d/%d", correct, count),
			fmtDurationSec(Mean(times)))
	}
	t.Note("minDelay−1 bounds are the tightest possible infeasible instances")
	return t, nil
}

func withHugeBound(ins graph.Instance) graph.Instance {
	ins.Bound = 1 << 40
	if ins.K < 1 {
		ins.K = 1
	}
	return ins
}

// RunE10 sweeps the delay-bound slack to find the crossover where phase 1
// alone already suffices (no cycle cancellation needed).
func RunE10(cfg Config) (*Table, error) {
	t := NewTable("E10: delay-bound tightness sweep",
		"slack", "inst", "exact shortcut", "mean iters", "mean c/LB", "delay ok")
	n := 20
	if cfg.Quick {
		n = 12
	}
	slacks := []float64{1.05, 1.2, 1.5, 2.0, 3.0, 4.0}
	for _, slack := range slacks {
		var iters, ratios []float64
		shortcut, okDelay, count := 0, 0, 0
		for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
			mk := func(s int64) graph.Instance {
				ins := gen.ER(s, n, 0.2, gen.DefaultWeights())
				ins.K = 2
				return ins
			}
			ins, ok := boundedInstance(mk, seed+int64(slack*100)+88000, slack)
			if !ok {
				continue
			}
			res, err := core.Solve(ins, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("E10: %w", err)
			}
			count++
			if res.Exact {
				shortcut++
			}
			iters = append(iters, float64(res.Stats.Iterations))
			ratios = append(ratios, ratio(res.Cost, res.LowerBound))
			if res.Delay <= ins.Bound {
				okDelay++
			}
		}
		if count == 0 {
			continue
		}
		t.Add(slack, count, fmt.Sprintf("%d/%d", shortcut, count),
			Mean(iters), Mean(ratios), fmt.Sprintf("%d/%d", okDelay, count))
	}
	t.Note("'exact shortcut' counts instances where the unconstrained min-cost flow already met the bound — the regime where the whole machinery is unnecessary")
	return t, nil
}
