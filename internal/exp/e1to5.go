package exp

import (
	"fmt"

	"repro/internal/auxgraph"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/residual"
	"repro/internal/shortest"
)

// RunE1 measures approximation quality against the exact optimum on small
// random instances: the paper's Lemma 3 claims delay ≤ D and cost ≤ 2·OPT;
// Theorem 4 relaxes both by ε.
func RunE1(cfg Config) (*Table, error) {
	t := NewTable("E1: approximation quality vs exact optimum",
		"n", "k", "slack", "inst", "mean c/OPT", "max c/OPT", "≤2·OPT", "delay ok", "exact hits")
	sizes := []int{7, 9}
	if !cfg.Quick {
		sizes = []int{7, 9, 11}
	}
	for _, n := range sizes {
		for _, k := range []int{2, 3} {
			for _, slack := range []float64{1.3, 2.0} {
				var ratios []float64
				okDelay, okCost, exactHits, count := 0, 0, 0, 0
				for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
					mk := func(s int64) graph.Instance {
						ins := gen.ER(s, n, 0.30, gen.DefaultWeights())
						ins.K = k
						return ins
					}
					ins, ok := boundedInstance(mk, seed+int64(n*100+k*10), slack)
					if !ok {
						continue
					}
					opt, err := exact.BruteForce(ins, 90)
					if err != nil {
						continue
					}
					res, err := core.Solve(ins, core.Options{})
					if err != nil {
						return nil, fmt.Errorf("E1: solve: %w", err)
					}
					count++
					r := ratio(res.Cost, opt.Cost)
					ratios = append(ratios, r)
					if res.Delay <= ins.Bound {
						okDelay++
					}
					if res.Cost <= 2*opt.Cost {
						okCost++
					}
					if res.Cost == opt.Cost {
						exactHits++
					}
				}
				if count == 0 {
					continue
				}
				t.Add(n, k, slack, count, Mean(ratios), Max(ratios),
					fmt.Sprintf("%d/%d", okCost, count),
					fmt.Sprintf("%d/%d", okDelay, count),
					fmt.Sprintf("%d/%d", exactHits, count))
			}
		}
	}
	t.Note("claim under test: cost ≤ 2·OPT and delay ≤ D on every feasible instance (Lemma 3)")
	return t, nil
}

// RunE2 verifies the Lemma 5 phase-1 invariant φ = delay/D + cost/C_LP ≤ 2
// on larger instances where brute force is impossible.
func RunE2(cfg Config) (*Table, error) {
	t := NewTable("E2: phase-1 invariant (Lemma 5)",
		"n", "k", "inst", "mean φ", "max φ", "φ ≤ 2", "mean λ-iters")
	sizes := []int{20, 40}
	if !cfg.Quick {
		sizes = []int{20, 40, 60}
	}
	for _, n := range sizes {
		for _, k := range []int{2, 4} {
			var phis, iters []float64
			okPhi, count := 0, 0
			for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
				mk := func(s int64) graph.Instance {
					ins := gen.ER(s, n, 0.15, gen.DefaultWeights())
					ins.K = k
					return ins
				}
				ins, ok := boundedInstance(mk, seed+int64(n*37+k), 1.15)
				if !ok {
					continue
				}
				p1, err := core.Phase1(ins)
				if err != nil {
					return nil, fmt.Errorf("E2: phase1: %w", err)
				}
				count++
				iters = append(iters, float64(p1.Stats.LambdaIterations))
				if p1.Exact {
					phis = append(phis, 1+float64(p1.Lo.Delay(ins.G))/float64(ins.Bound))
					okPhi++
					continue
				}
				chosen := p1.ChooseByPotential(ins.G, ins.Bound)
				clp, _ := p1.CLP.Float64()
				phi := float64(chosen.Cost(ins.G))/clp +
					float64(chosen.Delay(ins.G))/float64(ins.Bound)
				phis = append(phis, phi)
				if phi <= 2+1e-9 {
					okPhi++
				}
			}
			if count == 0 {
				continue
			}
			t.Add(n, k, count, Mean(phis), Max(phis),
				fmt.Sprintf("%d/%d", okPhi, count), Mean(iters))
		}
	}
	t.Note("φ ≤ 2 is exactly Lemma 5: delay ≤ αD and cost ≤ (2−α)·C_OPT for some α ∈ [0,2]")
	return t, nil
}

// RunE3 reproduces the Figure 1 pathology: without Definition 10's cost
// cap an adversarially-compliant cycle selection inflates cost; with the
// cap the algorithm stays within 2·OPT for every D.
func RunE3(cfg Config) (*Table, error) {
	t := NewTable("E3: Figure 1 pathology (cost cap ablation)",
		"D", "OPT", "capped c/OPT", "uncapped+adv c/OPT", "capped delay ok", "uncapped delay ok")
	ds := []int64{2, 4, 8, 16}
	if !cfg.Quick {
		ds = []int64{2, 4, 8, 16, 32, 64}
	}
	const scaleC = 10
	for _, d := range ds {
		ins, opt, err := gen.Figure1(scaleC, d)
		if err != nil {
			return nil, fmt.Errorf("E3: %w", err)
		}
		capped, err := core.Solve(ins, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("E3: capped solve: %w", err)
		}
		uncapped, err := core.Solve(ins, core.Options{DisableCostCap: true, Adversarial: true, OverestimateCRef: true, NoSafetyNet: true})
		if err != nil {
			return nil, fmt.Errorf("E3: uncapped solve: %w", err)
		}
		t.Add(d, opt, ratio(capped.Cost, opt), ratio(uncapped.Cost, opt),
			capped.Delay <= ins.Bound, uncapped.Delay <= ins.Bound)
	}
	t.Note("the uncapped arm reproduces the paper's Figure 1 blow-up exactly: cost (D+1)·OPT−ε, i.e. ratio D+0.9 at OPT=10")
	t.Note("the uncapped arm also disables the LP reference bound and the phase-1 safety net — the ingredients Definition 10's cost constraint replaces")
	return t, nil
}

// RunE4 validates Lemma 15 on the Figure 2 construction and random
// residual graphs: projecting an H-walk preserves cost/delay exactly, and
// the layered sizes match Algorithm 2.
func RunE4(cfg Config) (*Table, error) {
	t := NewTable("E4: auxiliary graph construction (Algorithm 2 / Lemma 15)",
		"graph", "kind", "B", "H nodes", "H edges", "roundtrips", "mismatches")
	// Figure 2 construction exactly as the paper stages it: G, then G̃ wrt
	// the path s·x·y·z·t, then H.
	ins, pathEdges, budget := gen.Figure2()
	rg := residual.Build(ins.G, graph.NewEdgeSet(pathEdges...))
	for _, kind := range []auxgraph.Kind{auxgraph.Plus, auxgraph.Minus, auxgraph.TwoSided} {
		a := auxgraph.Build(rg.R, ins.S, budget, kind)
		rt, mm := roundtripCount(rg.R, a)
		t.Add("figure2", kind.String(), budget, a.H.NumNodes(), a.H.NumEdges(), rt, mm)
	}
	// Random residual graphs.
	for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
		base := gen.ER(seed+500, 8, 0.3, gen.Weights{MaxCost: 3, MaxDelay: 6, Correlation: -0.5})
		sol := graph.NewEdgeSet()
		for _, e := range base.G.EdgesView() {
			if e.ID%3 == 0 {
				sol.Add(e.ID)
			}
		}
		rrg := residual.Build(base.G, sol)
		// Aggregate over every reversed-edge endpoint as the anchor: these
		// are the vertices the bicameral search actually roots at.
		var rt, mm, nodes, edges int
		for _, v := range rrg.ReversedSeeds() {
			a := auxgraph.Build(rrg.R, v, 6, auxgraph.TwoSided)
			r, m := roundtripCount(rrg.R, a)
			rt += r
			mm += m
			nodes, edges = a.H.NumNodes(), a.H.NumEdges()
		}
		t.Add(fmt.Sprintf("er-seed%d", seed), "H±", 6, nodes, edges, rt, mm)
	}
	t.Note("roundtrips: walks projected from H whose measured (cost, delay) matched the layer arithmetic; mismatches must be 0")
	return t, nil
}

// roundtripCount exercises Lemma 15: for every layer copy of the anchor
// reachable without negative cycles, project the walk and compare.
func roundtripCount(base *graph.Digraph, a *auxgraph.Aux) (roundtrips, mismatches int) {
	tr, hCyc, ok := shortest.BellmanFord(a.H, a.Start(), shortest.DelayWeight)
	if !ok {
		// A negative-delay cycle in H: its projection must preserve both
		// measures exactly (H real edges carry the base weights, wraps 0).
		var c, d int64
		for _, cyc := range a.Project(hCyc) {
			c += cyc.Cost(base)
			d += cyc.Delay(base)
		}
		roundtrips++
		if c != hCyc.Cost(a.H) || d != hCyc.Delay(a.H) {
			mismatches++
		}
		return roundtrips, mismatches
	}
	for l := int64(-a.B); l <= a.B; l++ {
		node, valid := a.LayerNode(a.V, l)
		if !valid || node == a.Start() || tr.Dist[node] == shortest.Inf {
			continue
		}
		p, _ := tr.PathTo(a.H, node)
		cycles := a.ProjectWalk(p.Edges)
		var c, d int64
		for _, cyc := range cycles {
			c += cyc.Cost(base)
			d += cyc.Delay(base)
		}
		roundtrips++
		wantCost := l - a.StartLayer()
		if c != wantCost || d != tr.Dist[node] {
			mismatches++
		}
	}
	return roundtrips, mismatches
}

// RunE5 sweeps ε for SolveScaled (Theorem 4) against the pseudo-polynomial
// Solve, reporting quality and work.
func RunE5(cfg Config) (*Table, error) {
	t := NewTable("E5: scaling tradeoff (Theorem 4)",
		"eps", "inst", "mean c/c_pseudo", "max delay/D", "mean time", "pseudo time")
	n := 14
	if cfg.Quick {
		n = 10
	}
	epss := []float64{1.0, 0.5, 0.25, 0.1}
	type sample struct {
		ins    graph.Instance
		pseudo core.Result
		ptime  float64
	}
	var samples []sample
	for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
		mk := func(s int64) graph.Instance {
			ins := gen.ER(s, n, 0.25, gen.Weights{MaxCost: 50, MaxDelay: 50, Correlation: -0.8})
			ins.K = 2
			return ins
		}
		ins, ok := boundedInstance(mk, seed+9000, 1.4)
		if !ok {
			continue
		}
		var res core.Result
		dur, err := measure(func() error {
			var e error
			res, e = core.Solve(ins, core.Options{})
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("E5: pseudo solve: %w", err)
		}
		samples = append(samples, sample{ins, res, dur.Seconds()})
	}
	for _, eps := range epss {
		var ratios, dRatios, times []float64
		var ptimes []float64
		for _, s := range samples {
			var res core.Result
			dur, err := measure(func() error {
				var e error
				res, e = core.SolveScaled(s.ins, eps, eps, core.Options{})
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("E5: scaled solve: %w", err)
			}
			ratios = append(ratios, ratio(res.Cost, s.pseudo.Cost))
			dRatios = append(dRatios, float64(res.Delay)/float64(s.ins.Bound))
			times = append(times, dur.Seconds())
			ptimes = append(ptimes, s.ptime)
		}
		if len(ratios) == 0 {
			continue
		}
		t.Add(eps, len(ratios), Mean(ratios), Max(dRatios),
			fmtDurationSec(Mean(times)), fmtDurationSec(Mean(ptimes)))
	}
	t.Note("delay/D may exceed 1 by up to ε (Theorem 4's (1+ε₁) factor)")
	return t, nil
}

func fmtDurationSec(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
