package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netsim"
)

// RunE13 measures REALIZED QoS with the discrete-event simulator: the same
// traffic demand is offered to k = 1, 2, 3 kRSP-provisioned path sets on
// the same topology, sweeping the offered load. The paper's introduction
// claims multipath routing buys bandwidth aggregation and load balance; the
// packet-level loss and tail delay here are those claims measured.
func RunE13(cfg Config) (*Table, error) {
	t := NewTable("E13: realized QoS under load (netsim)",
		"load", "k", "inst", "mean loss", "mean p99 delay", "mean max util")
	n := 20
	packets := 3000
	if cfg.Quick {
		n = 14
		packets = 800
	}
	loads := []float64{0.6, 1.2, 1.8}
	for _, load := range loads {
		for _, k := range []int{1, 2, 3} {
			var losses, p99s, utils []float64
			for seed := int64(0); seed < int64(cfg.seeds()); seed++ {
				mk := func(s int64) graph.Instance {
					ins := gen.ER(s, n, 0.25, gen.Weights{MaxCost: 10, MaxDelay: 10, Correlation: -0.7})
					ins.K = k
					return ins
				}
				ins, ok := boundedInstance(mk, seed+int64(k)*77+99000, 1.5)
				if !ok {
					continue
				}
				res, err := core.Solve(ins, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("E13: solve: %w", err)
				}
				// Offered load is expressed relative to ONE link's service
				// rate, so load > 1 saturates any single path and only
				// multipath can absorb it.
				st, err := netsim.Run(ins.G, netsim.Config{QueueLimit: 32}, []netsim.Flow{
					{Paths: res.Solution.Paths, Rate: load, Packets: packets},
				}, seed+1)
				if err != nil {
					return nil, fmt.Errorf("E13: sim: %w", err)
				}
				losses = append(losses, st.LossRate())
				p99s = append(p99s, st.P99Delay)
				utils = append(utils, st.MaxUtilization)
			}
			if len(losses) == 0 {
				continue
			}
			t.Add(load, k, len(losses), Mean(losses), Mean(p99s), Mean(utils))
		}
	}
	t.Note("load is the Poisson arrival rate relative to a single link's service rate; loads > 1 exceed any single path's capacity")
	t.Note("claim under test (§1): disjoint multipath absorbs loads a single QoS path cannot")
	return t, nil
}
