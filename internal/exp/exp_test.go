package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Add(1, 2.5)
	tab.Add("xyz", "w")
	tab.Note("footnote %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "2.500", "xyz", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tab := NewTable("demo", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Add(1, 2)
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("demo", "a", "b,c")
	tab.Add(`quo"te`, 2)
	var buf bytes.Buffer
	tab.RenderCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"b,c"`) || !strings.Contains(out, `"quo""te"`) {
		t.Fatalf("csv escaping broken:\n%s", out)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatal("mean")
	}
	if Max(xs) != 4 {
		t.Fatal("max")
	}
	if StdDev(xs) < 1.29 || StdDev(xs) > 1.30 {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if GeoMean([]float64{1, 4}) != 2 {
		t.Fatalf("geomean = %v", GeoMean([]float64{1, 4}))
	}
	if GeoMean([]float64{0, 4}) != 0 {
		t.Fatal("geomean with zero")
	}
	if Percentile(xs, 50) != 2 || Percentile(xs, 100) != 4 {
		t.Fatalf("percentiles %v %v", Percentile(xs, 50), Percentile(xs, 100))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-input handling")
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry size %d", len(reg))
	}
	if Lookup("E3") == nil || Lookup("E3").ID != "E3" {
		t.Fatal("lookup E3")
	}
	if Lookup("E99") != nil {
		t.Fatal("lookup bogus")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment in quick mode and
// checks structural invariants of the produced tables.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds")
	}
	cfg := Config{Quick: true, Seeds: 2}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: ragged row %v", e.ID, row)
				}
			}
		})
	}
}

// TestE4NoMismatches: the Lemma 15 roundtrip column must be all zero.
func TestE4NoMismatches(t *testing.T) {
	tab, err := RunE4(Config{Quick: true, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	mmCol := -1
	for i, c := range tab.Columns {
		if c == "mismatches" {
			mmCol = i
		}
	}
	if mmCol < 0 {
		t.Fatal("no mismatches column")
	}
	for _, row := range tab.Rows {
		if row[mmCol] != "0" {
			t.Fatalf("mismatch row: %v", row)
		}
	}
}

// TestE3CappedStaysBounded: the capped column of E3 must stay ≤ 2.
func TestE3CappedStaysBounded(t *testing.T) {
	tab, err := RunE3(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		r, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if r > 2.0+1e-9 {
			t.Fatalf("capped ratio %v > 2 in row %v", r, row)
		}
		if row[4] != "true" {
			t.Fatalf("capped run violated delay: %v", row)
		}
	}
}
