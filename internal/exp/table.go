// Package exp is the experiment harness: a registry of the E1–E10
// experiments from DESIGN.md §5, runners that produce text tables (and
// CSV), and small statistics helpers. cmd/krspexp and the repository-root
// benchmarks both drive this package, so EXPERIMENTS.md is regenerable
// from a single source of truth.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is an ordered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes render under the table (assumptions, caveats).
	Notes []string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Add(vals ...any) {
	if len(vals) != len(t.Columns) {
		//lint:allow nopanic arity mismatch is a programmer error in experiment code
		panic(fmt.Sprintf("exp: row has %d values, table %q has %d columns",
			len(vals), t.Title, len(t.Columns)))
	}
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	var head, rule strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&head, "%-*s", widths[i]+2, c)
		rule.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.TrimRight(rule.String(), " "))
	for _, row := range t.Rows {
		var b strings.Builder
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (no notes).
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}
