package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// SolveScaled is Theorem 4: for fixed ε₁, ε₂ > 0 it rounds edge delays to
// multiples of ε₁·D/n′ and edge costs to multiples of ε₂·Ĉ/n′ (n′ = k·n,
// the maximum number of edges any solution can use; Ĉ is the phase-1 LP
// lower bound standing in for C_OPT), runs the pseudo-polynomial Solve on
// the scaled instance, and reports the chosen paths under the ORIGINAL
// weights. The scaled instance has delays bounded by ⌊n′/ε₁⌋ and costs by
// O(n′/ε₂), making Solve polynomial; rounding loses at most ε₁·D in delay
// and ε₂·Ĉ in cost, giving the (1+ε₁, 2+ε₂) bifactor.
func SolveScaled(ins graph.Instance, eps1, eps2 float64, opt Options) (Result, error) {
	return SolveScaledCtx(context.Background(), ins, eps1, eps2, opt)
}

// SolveScaledCtx is SolveScaled honoring ctx with SolveCtx's anytime
// semantics: deadlines degrade to the best feasible solution reached so far
// (here the outer phase-1 endpoint if the inner scaled solve never got that
// far) rather than erroring, and ErrNoProgress is returned only when the
// deadline fired before the original-weights phase 1 produced any feasible
// k-flow.
func SolveScaledCtx(ctx context.Context, ins graph.Instance, eps1, eps2 float64, opt Options) (Result, error) {
	c := cancel.New(ctx, opt.PollEvery)
	defer c.Release()
	total := opt.Metrics.StartSpan(obs.PhaseTotal)
	res, err := solveScaled(ins, eps1, eps2, opt, c)
	total.End()
	recordOutcome(opt.Metrics, res, err)
	return res, err
}

func solveScaled(ins graph.Instance, eps1, eps2 float64, opt Options, c *cancel.Canceller) (Result, error) {
	if eps1 <= 0 || eps2 <= 0 {
		return Result{}, fmt.Errorf("krsp: epsilons must be positive (got %g, %g)", eps1, eps2)
	}
	if err := ins.Validate(); err != nil {
		return Result{}, err
	}
	m := opt.Metrics
	r := opt.Recorder
	r.Record(rec.KindSolveStart, int64(ins.G.NumNodes()), int64(ins.G.NumEdges()), int64(ins.K), ins.Bound)
	// Phase 1 on the ORIGINAL instance supplies Ĉ and settles feasibility
	// questions exactly (scaling must not change feasibility verdicts).
	ps := m.StartSpan(obs.PhasePhase1)
	r.Record(rec.KindPhaseStart, int64(obs.PhasePhase1), 0, 0, 0)
	p1, err := phase1Kernel(ins, opt, m.FlowMetrics(), c)
	ps.End()
	r.Record(rec.KindPhaseEnd, int64(obs.PhasePhase1), 0, 0, 0)
	if err != nil {
		return Result{}, err
	}
	if p1.Exact {
		return finish(ins, p1.Lo.Edges, p1, Stats{Phase1: p1.Stats}, true, m, r)
	}
	g := ins.G
	nPrime := int64(ins.K) * int64(g.NumNodes())
	if nPrime < 1 {
		nPrime = 1
	}
	// θd, θc are the rounding granularities; clamp to ≥ 1 (θ = 1 keeps the
	// weight exact, which simply means the instance was already small).
	thetaD := int64(eps1 * float64(ins.Bound) / float64(nPrime))
	if thetaD < 1 {
		thetaD = 1
	}
	cHat := p1.CLPCeil
	thetaC := int64(eps2 * float64(cHat) / float64(nPrime))
	if thetaC < 1 {
		thetaC = 1
	}

	// The scale span covers rounding plus the inner pseudo-polynomial
	// solve; the inner run goes through the internal solve so it is not
	// double-counted as a second krsp_solves_total.
	ss := m.StartSpan(obs.PhaseScale)
	r.Record(rec.KindPhaseStart, int64(obs.PhaseScale), 0, 0, 0)
	sg := graph.New(g.NumNodes())
	for _, e := range g.EdgesView() {
		sg.AddEdge(e.From, e.To, e.Cost/thetaC, e.Delay/thetaD)
	}
	scaled := graph.Instance{
		G: sg, S: ins.S, T: ins.T, K: ins.K,
		Bound: ins.Bound / thetaD,
		Name:  ins.Name + " (scaled)",
	}
	sres, err := solve(scaled, opt, c)
	ss.End()
	r.Record(rec.KindPhaseEnd, int64(obs.PhaseScale), 0, 0, 0)
	if err != nil {
		if errors.Is(err, ErrNoProgress) {
			// The deadline hit inside the scaled re-solve before it rebuilt
			// its endpoint flows — but the OUTER phase 1 already holds a
			// feasible flow in original weights: degrade to it.
			return finish(ins, p1.Lo.Edges, p1,
				Stats{Phase1: p1.Stats, Degraded: true}, false, m, r)
		}
		// Rounding delays down can never make a feasible instance
		// infeasible, so errors here are structural and propagate.
		return Result{}, err
	}
	// Re-measure the chosen paths in original weights. Edge IDs coincide
	// between g and sg by construction.
	sol := sres.Solution
	res := Result{
		Solution:   sol,
		Cost:       sol.Cost(g),
		Delay:      sol.Delay(g),
		LowerBound: p1.CLPCeil,
		Stats:      sres.Stats,
	}
	res.Stats.Phase1 = p1.Stats
	if p1.Degraded {
		res.Stats.Degraded = true
	}
	return res, nil
}
