package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
)

// FuzzSolveCtx throws fuzzer-shaped instances, poll strides, and fault
// seeds at SolveCtx. The contract under test is the anytime/robustness
// invariant: whatever the input, the solver either returns a valid
// delay-feasible solution or a clean typed error — never a panic, never a
// bound violation.
func FuzzSolveCtx(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), int64(40), uint8(16), false)
	f.Add(int64(7), uint8(12), uint8(3), int64(9), uint8(1), true)
	f.Add(int64(-3), uint8(2), uint8(1), int64(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, seed int64, n, k uint8, bound int64, stride uint8, trip bool) {
		nodes := int(n%24) + 2
		r := rand.New(rand.NewSource(seed))
		g := graph.New(nodes)
		for i := 0; i < 4*nodes; i++ {
			u, v := r.Intn(nodes), r.Intn(nodes)
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), r.Int63n(50), r.Int63n(50))
			}
		}
		ins := graph.Instance{
			G: g, S: 0, T: graph.NodeID(nodes - 1),
			K:     int(k%4) + 1,
			Bound: bound % 4096,
		}
		faults := fault.New(seed)
		if trip {
			faults.Arm(fault.PointCancel, 0.5)
			faults.Arm(fault.PointResidualUpdate, 0.5)
			faults.Arm(fault.PointCycleSearch, 0.3)
		}
		ctx, stop := context.WithCancel(context.Background())
		defer stop()
		res, err := core.SolveCtx(ctx, ins, core.Options{
			Faults:    faults,
			PollEvery: int(stride),
		})
		if err != nil {
			if errors.Is(err, core.ErrNoKPaths) || errors.Is(err, core.ErrDelayInfeasible) ||
				errors.Is(err, core.ErrNoProgress) {
				return
			}
			// Validation errors from hostile instances are clean too.
			if ins.Validate() != nil {
				return
			}
			t.Fatalf("unclean error: %v", err)
		}
		if res.Delay > ins.Bound {
			t.Fatalf("delay %d > bound %d (degraded=%v)", res.Delay, ins.Bound, res.Stats.Degraded)
		}
		if verr := res.Solution.Validate(ins); verr != nil {
			t.Fatalf("invalid solution: %v", verr)
		}
	})
}
