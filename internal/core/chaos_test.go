package core_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bicameral"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestChaosSoak hammers SolveCtx with seeded random fault injection and
// cancellation trips across ≥ 500 solves, asserting the robustness
// contract: every outcome is either a feasible solution (delay bound
// respected, paths valid — degraded or not) or a clean typed error. No
// panic ever escapes, no delay bound is ever violated, no solve hangs.
// Deterministic: every random draw comes from seeded sources, and
// cancellation fires via fault.PointCancel trips rather than wall-clock
// deadlines. Skipped under -short.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const rounds = 650 // ≥ 500 actual solves after infeasible-bound skips
	r := rand.New(rand.NewSource(20260805))
	reg := obs.New(&obs.ManualClock{})
	solves, degraded, rebuilt := 0, 0, 0
	for i := 0; i < rounds; i++ {
		n := 10 + r.Intn(16)
		ins := gen.ER(int64(i), n, 0.25, gen.DefaultWeights())
		ins.K = 1 + r.Intn(3)
		bounded, ok := gen.WithBound(ins, 1.05+r.Float64())
		if !ok {
			continue
		}
		faults := fault.New(int64(i)*31 + 7)
		if r.Float64() < 0.6 {
			faults.Arm(fault.PointResidualUpdate, r.Float64())
		}
		if r.Float64() < 0.5 {
			faults.Arm(fault.PointCycleSearch, r.Float64()*0.8)
		}
		if r.Float64() < 0.4 {
			faults.Arm(fault.PointCancel, r.Float64()*0.6)
		}
		opt := core.Options{
			Faults:    faults,
			Metrics:   reg,
			Workers:   1 + r.Intn(4),
			PollEvery: 1 << uint(r.Intn(11)), // strides 1..1024
		}
		// The LP engine is exercised on the smallest instances only (it is
		// exponential-ish in practice) to reach the PointLPRound site.
		if n <= 12 && ins.K == 1 && r.Float64() < 0.1 {
			opt.Engine = bicameral.EngineLP
			faults.Arm(fault.PointLPRound, r.Float64())
		}
		ctx, stop := context.WithCancel(context.Background())
		res, err := core.SolveCtx(ctx, bounded, opt)
		stop()
		solves++
		if err != nil {
			// The instance is feasible by construction, so the only clean
			// failure modes are the typed ones.
			if !errors.Is(err, core.ErrNoProgress) &&
				!errors.Is(err, core.ErrNoKPaths) &&
				!errors.Is(err, core.ErrDelayInfeasible) {
				t.Fatalf("round %d (%s): unclean error: %v", i, bounded.Name, err)
			}
			continue
		}
		if res.Delay > bounded.Bound {
			t.Fatalf("round %d (%s): delay %d > bound %d (degraded=%v)",
				i, bounded.Name, res.Delay, bounded.Bound, res.Stats.Degraded)
		}
		if verr := res.Solution.Validate(bounded); verr != nil {
			t.Fatalf("round %d (%s): invalid solution: %v", i, bounded.Name, verr)
		}
		if res.LowerBound < 1 {
			t.Fatalf("round %d (%s): missing certificate", i, bounded.Name)
		}
		if res.Stats.Degraded {
			degraded++
		}
		rebuilt += res.Stats.ResidualRebuilds
	}
	if solves < 500 {
		t.Fatalf("only %d/%d rounds produced feasible instances; need ≥ 500", solves, rounds)
	}
	// The soak must actually exercise the chaos paths, not dodge them.
	if degraded == 0 {
		t.Fatal("no solve ever degraded: cancel trips never landed")
	}
	if rebuilt == 0 {
		t.Fatal("no residual rebuild ever happened: injection never landed")
	}
	if got := reg.SolverMetrics().Degraded.Value(); got != int64(degraded) {
		t.Fatalf("degraded counter %d != observed %d", got, degraded)
	}
}
