package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// BatchItem is one result of SolveBatch, tagged with its input index so
// callers can correlate out-of-order completion.
type BatchItem struct {
	Index  int
	Result Result
	Err    error
}

// SolveBatch solves many independent kRSP instances concurrently on a
// bounded worker pool (an SDN controller re-provisioning many tunnel pairs
// is the motivating workload). workers ≤ 0 selects GOMAXPROCS. Results are
// returned in input order; each item carries its own error, so one
// infeasible instance does not abort the batch.
func SolveBatch(instances []graph.Instance, opt Options, workers int) []BatchItem {
	return SolveBatchCtx(context.Background(), instances, opt, workers)
}

// SolveBatchCtx is SolveBatch honoring a context: once ctx is done, no
// further instance is started and every unstarted item carries ctx.Err().
// Items already in flight degrade with SolveCtx's anytime semantics (best
// feasible solution so far, Stats.Degraded set, or ErrNoProgress when
// nothing feasible existed yet), so cancellation latency is one poll
// stride, not one solve.
func SolveBatchCtx(ctx context.Context, instances []graph.Instance, opt Options, workers int) []BatchItem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	out := make([]BatchItem, len(instances))
	if len(instances) == 0 {
		return out
	}
	// Buffered to the batch size: the producer loop below never blocks on a
	// slow worker, and close() doubles as the only completion signal.
	jobs := make(chan int, len(instances))
	for i := range instances {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					out[i] = BatchItem{Index: i, Err: err}
					continue
				}
				res, err := SolveCtx(ctx, instances[i], opt)
				out[i] = BatchItem{Index: i, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// SweepPoint is one (bound, result) pair of a tradeoff sweep.
type SweepPoint struct {
	Bound  int64
	Result Result
	Err    error
}

// SolveSweep solves the same topology across a set of delay bounds in
// parallel, producing the cost/delay tradeoff curve an operator tunes an
// SLA against. Bounds are processed on a worker pool; results are in input
// order.
func SolveSweep(ins graph.Instance, bounds []int64, opt Options, workers int) []SweepPoint {
	instances := make([]graph.Instance, len(bounds))
	for i, b := range bounds {
		cp := ins
		cp.Bound = b
		instances[i] = cp
	}
	items := SolveBatch(instances, opt, workers)
	out := make([]SweepPoint, len(bounds))
	for i, it := range items {
		out[i] = SweepPoint{Bound: bounds[i], Result: it.Result, Err: it.Err}
	}
	return out
}
