// Package core implements the paper's kRSP algorithms behind one public
// API:
//
//   - Phase1 — the LP-rounding first phase (Lemma 5): a solution whose
//     delay/D + cost/C_LP is at most 2, computed combinatorially via a
//     Lagrangian search over min-cost k-flows (exactly the LP optimum, by
//     strong duality over the flow polytope with one budget row).
//   - Solve — Algorithm 1 (Lemma 3): phase 1 followed by cycle
//     cancellation with bicameral cycles, yielding delay ≤ D and cost
//     ≤ 2·C_OPT in pseudo-polynomial time.
//   - SolveScaled — Theorem 4: cost/delay scaling around Solve, yielding
//     the polynomial (1+ε₁, 2+ε₂) bifactor guarantee.
//
// All public entry points validate the instance and return typed errors
// for the two infeasibility modes (not enough disjoint paths; delay bound
// unreachable).
package core

import (
	"errors"
	"fmt"

	"repro/internal/bicameral"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// ErrNoKPaths reports that fewer than k edge-disjoint s→t paths exist.
var ErrNoKPaths = errors.New("krsp: fewer than k edge-disjoint paths exist")

// ErrDelayInfeasible reports that even the delay-minimal k disjoint paths
// exceed the bound D.
var ErrDelayInfeasible = errors.New("krsp: no k disjoint paths within the delay bound")

// ErrNoProgress reports that a SolveCtx deadline fired before phase 1 had
// produced any feasible k-flow — there is nothing, not even a degraded
// solution, to return. Once phase 1's delay-minimal flow exists, deadlines
// degrade instead (Stats.Degraded) and never produce this error.
var ErrNoProgress = errors.New("krsp: cancelled before any feasible k-flow was found")

// Result is a solved kRSP instance.
type Result struct {
	Solution graph.Solution
	Cost     int64
	Delay    int64
	// LowerBound is an integer lower bound on C_OPT (⌈C_LP⌉ from phase 1),
	// certifying the approximation factor Cost/LowerBound.
	LowerBound int64
	// Exact reports that Cost is known to equal C_OPT (the unconstrained
	// min-cost flow happened to satisfy the delay bound).
	Exact bool
	Stats Stats
}

// Stats instruments a solve. The JSON tags are part of the daemon's
// response schema (cmd/krspd echoes Stats per request) and of krsp's
// -trace JSONL output.
type Stats struct {
	// Phase1 records the first-phase Lagrangian search.
	Phase1 Phase1Stats `json:"phase1"`
	// Iterations counts cycle cancellations performed.
	Iterations int `json:"iterations"`
	// CyclesByType counts applied candidates by bicameral type (0,1,2).
	CyclesByType [3]int `json:"cyclesByType"`
	// CRefEscalations counts how often the C_OPT stand-in had to grow
	// because no bicameral cycle existed under the current cap.
	CRefEscalations int `json:"crefEscalations"`
	// RelaxedCap reports that the final answer used a cycle beyond the
	// Definition-10 cost cap (a documented deviation used only when the
	// cap-respecting search is exhausted; the cost bound then degrades).
	RelaxedCap bool `json:"relaxedCap"`
	// FellBackToPhase1 reports that the cancellation loop could not beat
	// the feasible phase-1 flow, which was returned instead.
	FellBackToPhase1 bool `json:"fellBackToPhase1"`
	// BudgetsTried accumulates bicameral search budget escalations.
	BudgetsTried int `json:"budgetsTried"`
	// Degraded reports that a SolveCtx deadline (or injected cancellation)
	// stopped the solve early: the result is the best delay-feasible
	// solution reached so far (Delay ≤ D always holds; the 2·C_OPT cost
	// bound may not). The anytime guarantee of Lemma 3's loop shape: phase
	// 1's feasible endpoint is valid from the moment it exists.
	Degraded bool `json:"degraded"`
	// ResidualRebuilds counts full residual-graph rebuilds forced by a
	// failed (or fault-injected) incremental update — the self-healing path.
	ResidualRebuilds int `json:"residualRebuilds"`
	// Trace holds one record per cancellation iteration when
	// Options.CollectTrace is set (nil otherwise).
	Trace []IterationRecord `json:"trace,omitempty"`
}

// IterationRecord captures the state of one Algorithm-1 iteration, enough
// to verify Lemma 12's monotonicity (r = ΔD/ΔC nondecreasing) offline.
type IterationRecord struct {
	// Cost and Delay are the solution totals BEFORE applying the cycle.
	Cost  int64 `json:"cost"`
	Delay int64 `json:"delay"`
	// CRef is the C_OPT stand-in in force.
	CRef int64 `json:"cref"`
	// CycleCost, CycleDelay and Type describe the applied candidate.
	CycleCost  int64 `json:"cycleCost"`
	CycleDelay int64 `json:"cycleDelay"`
	Type       int   `json:"type"`
}

// Options tune Solve and SolveScaled.
type Options struct {
	// Engine selects the bicameral search engine (default combinatorial).
	Engine bicameral.Engine
	// FullSweep uses Algorithm 3's unit-step budget schedule (ablation).
	FullSweep bool
	// MaxIterations caps cycle cancellations (default 10·m·k + 1000).
	MaxIterations int
	// Phase1Only stops after the first phase, returning the better of the
	// two Lagrangian endpoint flows — the (2,2)-style baseline of [9].
	Phase1Only bool
	// Phase1Kernel selects the first-phase implementation: "classic" (the
	// default; exact λ* search, bit-identical output across releases) or
	// "scaled" (interval-restricted relaxation after Ashvinkumar–Bernstein–
	// Karczmarz: target-stopped augmentation Dijkstras plus an ε duality-gap
	// early exit from the λ search). The scaled kernel keeps feasibility
	// verdicts exact and reports a lower bound within (1+ε) of C_LP, at a
	// ≥2× phase-1 speedup on N ≥ 5k instances. Unknown names error.
	Phase1Kernel string
	// Phase1Eps is the scaled kernel's duality-gap tolerance ε (default
	// 0.125; must be positive when set). Ignored by the classic kernel.
	Phase1Eps float64
	// DisableCostCap removes Definition 10's |c(O)| ≤ C_OPT constraint —
	// the Figure 1 pathology switch (experiment E3). Never use it for real
	// solving.
	DisableCostCap bool
	// Adversarial picks the most expensive qualifying cycle at every step
	// (E3's worst-case-compliant selection). Never use it for real solving.
	Adversarial bool
	// OverestimateCRef replaces the LP lower bound with Σc(e) as the C_OPT
	// stand-in, modelling an algorithm that lacks a principled bound — the
	// second half of the Figure 1 pathology. Never use it for real solving.
	OverestimateCRef bool
	// NoSafetyNet disables returning the feasible phase-1 endpoint when it
	// beats the cancelled solution — the paper's Algorithm 1 has no such
	// net, and the Figure 1 ablation (E3) must run without it. Never use it
	// for real solving.
	NoSafetyNet bool
	// CollectTrace records one IterationRecord per cancellation in
	// Stats.Trace (off by default: it allocates).
	CollectTrace bool
	// Workers bounds the goroutines of the bicameral search's anchor×budget
	// sweep (see bicameral.Options.Workers). ≤ 1 runs serially; results are
	// bit-identical for every value.
	Workers int
	// AllowRelaxedCap permits consuming the relaxed-cap fallback candidate
	// when the capped search is exhausted (keeps feasibility-first
	// behaviour at the price of the cost bound). Defaults to true in
	// Solve; set NoRelaxedCap to disable.
	NoRelaxedCap bool
	// Metrics, when non-nil, receives solver telemetry: outcome counters
	// recorded from Stats after each Solve/SolveScaled, per-phase duration
	// spans, and the flow/bicameral/SPFA kernel counts of every layer
	// underneath (DESIGN.md §9 catalogues the names). Nil (the default) is
	// a no-op sink with zero cost on the solve path — `make bench-guard`
	// enforces that SolveN60K3 allocates nothing extra with Metrics unset.
	// Metrics never influence results, but counters fed by speculative
	// parallel work may vary with Workers; the determinism promise covers
	// Result and Stats only.
	Metrics *obs.Registry
	// Recorder, when non-nil, is the flight recorder receiving the solve's
	// structured event stream: phase transitions, λ-iterations with their
	// duality gap, augmentation rounds, cancellation steps, C_ref
	// escalations, degradation decisions, and armed fault-point hits
	// (DESIGN.md §13 documents the schema; cmd/krsptrace renders dumps).
	// Where Metrics aggregates across solves, the Recorder captures the
	// trajectory of THIS solve. Nil (the default) is a free no-op sink —
	// `make bench-guard` enforces that SolveN60K3 allocates nothing extra
	// with Recorder unset. Recorded events never influence results.
	Recorder *rec.Recorder
	// PollEvery is the cancellation poll stride for SolveCtx/SolveScaledCtx:
	// kernels check the context's done channel once per PollEvery loop
	// iterations (default cancel.DefaultPollStride). Smaller values tighten
	// deadline latency at the price of more channel selects. Ignored by
	// Solve/SolveScaled, which never poll.
	PollEvery int
	// Faults, when non-nil, is the fault-injection registry consulted at the
	// solver's deterministic injection sites (residual update, cycle search,
	// LP rounding, cancellation). Nil (the default) is a free no-op. Test
	// and chaos tooling only — never wire it in production.
	Faults *fault.Registry
}

// Feasibility describes why an instance is (in)feasible.
type Feasibility struct {
	MaxDisjoint int   // max number of edge-disjoint s→t paths
	MinDelay    int64 // min total delay of any k disjoint paths (if k fit)
	OK          bool
}

// CheckFeasible computes the feasibility certificate: k ≤ max-flow and
// min-delay k-flow ≤ D.
func CheckFeasible(ins graph.Instance) (Feasibility, error) {
	if err := ins.Validate(); err != nil {
		return Feasibility{}, err
	}
	f := Feasibility{MaxDisjoint: flow.MaxDisjointPaths(ins.G, ins.S, ins.T)}
	if f.MaxDisjoint < ins.K {
		return f, nil
	}
	df, err := flow.MinCostKFlow(ins.G, ins.S, ins.T, ins.K, delayWeight)
	if err != nil {
		return f, fmt.Errorf("krsp: internal: max-flow admitted k but min-cost flow failed: %w", err)
	}
	f.MinDelay = df.Delay(ins.G)
	f.OK = f.MinDelay <= ins.Bound
	return f, nil
}

func delayWeight(e graph.Edge) int64 { return e.Delay }
func costWeight(e graph.Edge) int64  { return e.Cost }
