package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// ExampleSolve demonstrates the headline API: two disjoint paths under a
// total delay budget, with the certified cost factor.
func ExampleSolve() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // cheap, slow
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1) // expensive, fast
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5) // direct

	ins := graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: 10}
	res, err := core.Solve(ins, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cost=%d delay=%d (bound %d)\n", res.Cost, res.Delay, ins.Bound)
	fmt.Printf("within 2x of optimum: %v\n", res.Cost <= 2*res.LowerBound*2/2 && res.Cost <= 2*13)
	// Output:
	// cost=13 delay=7 (bound 10)
	// within 2x of optimum: true
}

// ExampleCheckFeasible shows the feasibility certificate an operator
// inspects before committing to an SLA.
func ExampleCheckFeasible() {
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 4)
	g.AddEdge(1, 2, 1, 4)
	g.AddEdge(0, 2, 9, 1)

	ins := graph.Instance{G: g, S: 0, T: 2, K: 2, Bound: 8}
	feas, _ := core.CheckFeasible(ins)
	fmt.Printf("max disjoint paths: %d\n", feas.MaxDisjoint)
	fmt.Printf("minimal total delay: %d\n", feas.MinDelay)
	fmt.Printf("k=2 within bound 8: %v\n", feas.OK)
	// Output:
	// max disjoint paths: 2
	// minimal total delay: 9
	// k=2 within bound 8: false
}

// ExampleSolveSweep computes the cost/delay tradeoff curve an operator
// tunes an SLA against.
func ExampleSolveSweep() {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	ins := graph.Instance{G: g, S: 0, T: 3, K: 2}

	for _, pt := range core.SolveSweep(ins, []int64{7, 22, 30}, core.Options{}, 2) {
		if pt.Err != nil {
			fmt.Printf("D=%d infeasible\n", pt.Bound)
			continue
		}
		fmt.Printf("D=%d -> cost %d\n", pt.Bound, pt.Result.Cost)
	}
	// The middle point returns 13 where OPT=12 — within the certified 2x
	// factor (tighter bounds can trade optimality for the guarantee).
	// Output:
	// D=7 -> cost 13
	// D=22 -> cost 13
	// D=30 -> cost 5
}
