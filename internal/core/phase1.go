package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cancel"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/shortest"
)

// Phase1Stats instruments the Lagrangian search. JSON tags are part of the
// daemon response schema (see Stats).
type Phase1Stats struct {
	// LambdaIterations counts multiplier updates.
	LambdaIterations int `json:"lambdaIterations"`
	// CLPNum/CLPDen is the exact rational LP lower bound C_LP = L(λ*).
	CLPNum int64 `json:"clpNum"`
	CLPDen int64 `json:"clpDen"`
}

// Phase1Result is the Lemma 5 outcome: two integral k-flows sandwiching
// the delay bound whose convex combination is LP-optimal.
type Phase1Result struct {
	// Lo is a feasible flow (delay ≤ D); Hi violates the bound (delay > D)
	// unless Exact, in which case Hi equals Lo.
	Lo, Hi flow.UnitFlow
	// Exact reports that Lo is exactly optimal (unconstrained min-cost
	// flow met the bound; no Lagrangian search was needed).
	Exact bool
	// CLP is the LP lower bound as an exact rational; CLPFloor/CLPCeil are
	// integer conveniences with ⌈C_LP⌉ ≤ C_OPT (costs are integral).
	CLP     *big.Rat
	CLPCeil int64
	// Degraded reports that a cancellation stopped the Lagrangian search
	// before λ* was certified. Lo/Hi still straddle the bound and CLP is
	// still a valid lower bound (every dual value is, by weak duality) —
	// it just may be weaker than the true C_LP.
	Degraded bool
	Stats    Phase1Stats
}

// ChooseByPotential returns the flow minimizing φ(f) = c(f)/C_LP + d(f)/D
// among Lo and Hi — the Lemma 5 selection — using exact big-rational
// arithmetic. By LP optimality min(φ) ≤ 2.
func (p Phase1Result) ChooseByPotential(g *graph.Digraph, bound int64) flow.UnitFlow {
	if p.Exact || p.CLP.Sign() == 0 {
		// With C_LP = 0 the cost ratio is meaningless; Lo is feasible and
		// cost-degenerate instances are solved by it directly.
		return p.Lo
	}
	phi := func(f flow.UnitFlow) *big.Rat {
		c := new(big.Rat).SetInt64(f.Cost(g))
		d := new(big.Rat).SetInt64(f.Delay(g))
		out := new(big.Rat).Quo(c, p.CLP)
		return out.Add(out, d.Quo(d, new(big.Rat).SetInt64(bound)))
	}
	if phi(p.Lo).Cmp(phi(p.Hi)) <= 0 {
		return p.Lo
	}
	return p.Hi
}

// Phase1 runs the first phase (Lemma 5): it computes the LP optimum of
//
//	min cᵀx  s.t.  x an s→t flow of value k, 0 ≤ x ≤ 1, dᵀx ≤ D
//
// via its Lagrangian dual max_λ [ MCF(c+λd) − λD ], keeping λ = p/q exact,
// and returns the two integral minimizers at λ* that straddle the bound.
// Either flow (chosen by potential) satisfies delay/D + cost/C_LP ≤ 2.
func Phase1(ins graph.Instance) (Phase1Result, error) {
	return phase1(ins, nil, nil, nil)
}

// phase1 is Phase1 with a flow-layer metric sink threaded through its
// min-cost-flow calls (nil records nothing), an optional canceller, and an
// optional flight recorder receiving one lambda-iter + duality-gap event
// pair per multiplier update (nil records nothing).
// Cancellation before BOTH endpoint flows exist yields ErrNoProgress (there
// is no feasible k-flow to degrade to); once they do, cancellation merely
// ends the Lagrangian refinement early with Degraded set — the endpoints
// and the best dual value seen remain valid.
func phase1(ins graph.Instance, fm *obs.FlowMetrics, c *cancel.Canceller, r *rec.Recorder) (Phase1Result, error) {
	if err := ins.Validate(); err != nil {
		return Phase1Result{}, err
	}
	g, s, t, k, bound := ins.G, ins.S, ins.T, ins.K, ins.Bound

	// All min-cost-flow calls in the Lagrangian search run on one frozen CSR
	// view through one reusable solver: packing costs O(n + m) once, and the
	// ~10 flow computations per phase 1 then allocate nothing but their
	// result sets. The solver's augmentation order is bit-identical to the
	// Digraph path, so this port changes no output anywhere downstream.
	kf := flow.NewKFlowSolver(graph.NewCSR(g))
	kf.SetRecorder(r)
	fc, err := kf.MinCostKFlow(s, t, k, shortest.LinCost, fm, c)
	if err != nil {
		if errors.Is(err, cancel.ErrCancelled) {
			return Phase1Result{}, fmt.Errorf("%w: deadline hit during the min-cost endpoint flow", ErrNoProgress)
		}
		return Phase1Result{}, fmt.Errorf("%w: %v", ErrNoKPaths, err)
	}
	if fc.Delay(g) <= bound {
		clp := new(big.Rat).SetInt64(fc.Cost(g))
		return Phase1Result{Lo: fc, Hi: fc, Exact: true,
			CLP: clp, CLPCeil: fc.Cost(g),
			Stats: Phase1Stats{CLPNum: fc.Cost(g), CLPDen: 1}}, nil
	}
	fd, err := kf.MinCostKFlow(s, t, k, shortest.LinDelay, fm, c)
	if err != nil {
		if errors.Is(err, cancel.ErrCancelled) {
			return Phase1Result{}, fmt.Errorf("%w: deadline hit during the min-delay endpoint flow", ErrNoProgress)
		}
		return Phase1Result{}, fmt.Errorf("%w: %v", ErrNoKPaths, err)
	}
	if fd.Delay(g) > bound {
		return Phase1Result{}, fmt.Errorf("%w: min delay %d > bound %d",
			ErrDelayInfeasible, fd.Delay(g), bound)
	}

	hi, lo := fc, fd // hi: delay > D with min cost; lo: delay ≤ D
	var st Phase1Stats
	degraded := false
	best := new(big.Rat).SetInt64(fc.Cost(g)) // L(0) = unconstrained min cost
	for iter := 0; iter < 256; iter++ {
		if c.Check() {
			degraded = true
			break
		}
		st.LambdaIterations++
		// λ = (c(lo) − c(hi)) / (d(hi) − d(lo)) — the multiplier where the
		// two endpoints' Lagrangians tie.
		p := lo.Cost(g) - hi.Cost(g)
		q := hi.Delay(g) - lo.Delay(g)
		if q <= 0 {
			return Phase1Result{}, fmt.Errorf("krsp: internal: lagrangian invariant broken (q=%d)", q)
		}
		if p < 0 {
			p = 0 // cost(lo) < cost(hi) can only happen via ties; λ=0 ends it
		}
		w := shortest.Combine(q, p)
		f, err := kf.MinCostKFlow(s, t, k, shortest.LinCombine(q, p), fm, c)
		if err != nil {
			if errors.Is(err, cancel.ErrCancelled) {
				degraded = true
				break
			}
			return Phase1Result{}, fmt.Errorf("krsp: internal: %v", err)
		}
		wf := f.Weight(g, w)
		// Dual value L(p/q) = (wf − p·D)/q; track the max.
		lval := new(big.Rat).SetFrac64(wf-p*bound, q)
		if lval.Cmp(best) > 0 {
			best = lval
		}
		r.Record(rec.KindLambdaIter, int64(st.LambdaIterations), p, q, wf)
		if r != nil {
			// Convergence snapshot: gap between the feasible endpoint's cost
			// and the best dual bound, floored to the recorder's int64 args.
			// Computed only when recording — the floor allocates big.Ints.
			lc := lo.Cost(g)
			dualFloor := ratFloorInt64(best)
			r.Record(rec.KindDualityGap, int64(st.LambdaIterations), lc, dualFloor, lc-dualFloor)
		}
		if wf == hi.Weight(g, w) || wf == lo.Weight(g, w) {
			break // λ* reached: f ties an endpoint
		}
		if f.Delay(g) <= bound {
			lo = f
		} else {
			hi = f
		}
	}
	res := Phase1Result{Lo: lo, Hi: hi, CLP: best, Degraded: degraded}
	num, den := best.Num(), best.Denom()
	st.CLPNum, st.CLPDen = num.Int64(), den.Int64()
	// ⌈C_LP⌉ is still a valid lower bound on the integral optimum.
	ceil := new(big.Int).Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	ceil.Div(ceil, den)
	res.CLPCeil = ceil.Int64()
	if res.CLPCeil < 1 {
		res.CLPCeil = 1
	}
	res.Stats = st
	return res, nil
}

// ratFloorInt64 is ⌊x⌋ for a nonnegative rational (big.Int.Div floors for
// the always-positive Rat denominator) — the dual bound as recorder args.
func ratFloorInt64(x *big.Rat) int64 {
	return new(big.Int).Div(x.Num(), x.Denom()).Int64()
}
