package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

func TestSolveBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var instances []graph.Instance
	for len(instances) < 8 {
		ins := randInstance(r, 6+r.Intn(4), 3, 10, 10, 2)
		feas, err := CheckFeasible(withBigBound(ins))
		if err != nil || feas.MaxDisjoint < ins.K {
			continue
		}
		ins.Bound = feas.MinDelay + r.Int63n(12)
		instances = append(instances, ins)
	}
	// Sequential reference.
	want := make([]Result, len(instances))
	for i, ins := range instances {
		res, err := Solve(ins, Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 3, 16} {
		items := SolveBatch(instances, Options{}, workers)
		if len(items) != len(instances) {
			t.Fatalf("workers=%d: %d items", workers, len(items))
		}
		for i, it := range items {
			if it.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, it.Err)
			}
			if it.Index != i {
				t.Fatalf("workers=%d: item %d has index %d", workers, i, it.Index)
			}
			if it.Result.Cost != want[i].Cost || it.Result.Delay != want[i].Delay {
				t.Fatalf("workers=%d item %d: (%d,%d) want (%d,%d)",
					workers, i, it.Result.Cost, it.Result.Delay, want[i].Cost, want[i].Delay)
			}
		}
	}
}

func withBigBound(ins graph.Instance) graph.Instance {
	ins.Bound = 1 << 40
	return ins
}

func TestSolveBatchEmptyAndErrors(t *testing.T) {
	if items := SolveBatch(nil, Options{}, 4); len(items) != 0 {
		t.Fatal("empty batch")
	}
	// A batch mixing feasible and infeasible instances reports per-item
	// errors without aborting.
	ok := tradeoff(30)
	bad := tradeoff(3)
	items := SolveBatch([]graph.Instance{ok, bad, ok}, Options{}, 2)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("feasible items errored: %v %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("infeasible item did not error")
	}
}

func TestSolveSweepMonotone(t *testing.T) {
	ins := tradeoff(0)
	bounds := []int64{7, 10, 15, 20, 25, 30}
	points := SolveSweep(ins, bounds, Options{}, 3)
	if len(points) != len(bounds) {
		t.Fatalf("%d points", len(points))
	}
	var prevCost int64 = 1 << 60
	for i, pt := range points {
		if pt.Err != nil {
			t.Fatalf("bound %d: %v", pt.Bound, pt.Err)
		}
		if pt.Result.Delay > pt.Bound {
			t.Fatalf("bound %d violated: delay %d", pt.Bound, pt.Result.Delay)
		}
		if pt.Bound != bounds[i] {
			t.Fatal("order scrambled")
		}
		// Looser bounds can only help: cost should be non-increasing up to
		// the 2× approximation wiggle; assert the certified lower bound
		// never exceeds the previous cost (a weak but sound monotonicity).
		if pt.Result.LowerBound > prevCost {
			t.Fatalf("lower bound %d exceeds previous cost %d", pt.Result.LowerBound, prevCost)
		}
		prevCost = pt.Result.Cost
	}
	// The loosest bound admits the cheapest pair (cost 5).
	if last := points[len(points)-1].Result; last.Cost != 5 {
		t.Fatalf("loose-bound cost %d", last.Cost)
	}
	// The tightest bound forces the expensive pair (cost 13).
	if first := points[0].Result; first.Cost != 13 {
		t.Fatalf("tight-bound cost %d", first.Cost)
	}
}

func TestSolveVertexDisjoint(t *testing.T) {
	// Two edge-disjoint paths share vertex 1; vertex-disjoint must avoid it
	// or pay more.
	g := graph.New(5)
	g.AddEdge(0, 1, 1, 1) // e0
	g.AddEdge(1, 4, 1, 1) // e1
	g.AddEdge(0, 1, 1, 1) // e2 parallel
	g.AddEdge(1, 4, 1, 1) // e3 parallel
	g.AddEdge(0, 2, 5, 1) // e4
	g.AddEdge(2, 4, 5, 1) // e5
	ins := graph.Instance{G: g, S: 0, T: 4, K: 2, Bound: 10}

	edgeRes, err := Solve(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if edgeRes.Cost != 4 { // both parallel pairs through vertex 1
		t.Fatalf("edge-disjoint cost %d", edgeRes.Cost)
	}
	vRes, err := SolveVertexDisjoint(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vRes.Cost != 12 { // one cheap route + the expensive detour
		t.Fatalf("vertex-disjoint cost %d", vRes.Cost)
	}
	// No interior vertex shared.
	seen := map[graph.NodeID]int{}
	for _, p := range vRes.Solution.Paths {
		nodes := p.Nodes(ins.G)
		for _, v := range nodes[1 : len(nodes)-1] {
			seen[v]++
			if seen[v] > 1 {
				t.Fatalf("interior vertex %d shared", v)
			}
		}
	}
}

func TestSolveVertexDisjointInfeasible(t *testing.T) {
	ins := tradeoff(30)
	ins.K = 3 // 3 edge-disjoint exist, but all middle routes share nothing…
	// tradeoff() has 3 vertex-disjoint routes (0-1-3, 0-2-3, 0-3): feasible.
	res, err := SolveVertexDisjoint(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Paths) != 3 {
		t.Fatalf("%d paths", len(res.Solution.Paths))
	}
	ins.K = 4
	if _, err := SolveVertexDisjoint(ins, Options{}); err == nil {
		t.Fatal("k=4 vertex-disjoint should be infeasible")
	}
}

// TestSolveBatchCtxCancellation: a cancelled context stops unstarted items
// and tags them with the context's error, while already-delivered results
// stay intact.
func TestSolveBatchCtxCancellation(t *testing.T) {
	ins := tradeoff(10)
	instances := make([]graph.Instance, 16)
	for i := range instances {
		cp := ins
		cp.Bound = int64(7 + i)
		instances[i] = cp
	}
	// Already-cancelled context: nothing runs, every item carries the error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := SolveBatchCtx(ctx, instances, Options{}, 4)
	if len(items) != len(instances) {
		t.Fatalf("%d items", len(items))
	}
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, it.Err)
		}
		if it.Index != i {
			t.Fatalf("item %d tagged index %d", i, it.Index)
		}
	}
	// Live context: identical to SolveBatch.
	for i, it := range SolveBatchCtx(context.Background(), instances, Options{}, 4) {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
	}
}

// TestSolveBatchConcurrencySafety hammers SolveBatch under the race
// detector: all instances share one underlying graph.
func TestSolveBatchConcurrencySafety(t *testing.T) {
	ins := tradeoff(10)
	instances := make([]graph.Instance, 24)
	for i := range instances {
		cp := ins
		cp.Bound = int64(7 + i)
		instances[i] = cp
	}
	var solved atomic.Int32
	items := SolveBatch(instances, Options{}, 8)
	for _, it := range items {
		if it.Err == nil {
			solved.Add(1)
		}
	}
	if solved.Load() != 24 {
		t.Fatalf("solved %d/24", solved.Load())
	}
}
