package core

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
)

// SolveVertexDisjoint solves the vertex-disjoint variant of kRSP: the k
// paths may share no interior vertex (a stronger fault model — a router
// failure kills at most one path). The standard reduction applies: split
// every vertex into in/out halves joined by a zero-weight gadget edge and
// solve the edge-disjoint problem on the split graph; the approximation
// guarantees carry over unchanged because the transform preserves path
// costs, delays, and disjointness exactly.
func SolveVertexDisjoint(ins graph.Instance, opt Options) (Result, error) {
	if err := ins.Validate(); err != nil {
		return Result{}, err
	}
	sp := flow.SplitVertices(ins.G)
	split := graph.Instance{
		G: sp.G, S: sp.Out[ins.S], T: sp.In[ins.T],
		K: ins.K, Bound: ins.Bound,
		Name: ins.Name + " (vertex-split)",
	}
	res, err := Solve(split, opt)
	if err != nil {
		return Result{}, err
	}
	// Project paths back to original edges and re-validate.
	projected := make([]graph.Path, len(res.Solution.Paths))
	for i, p := range res.Solution.Paths {
		projected[i] = sp.ProjectPath(p)
	}
	sol := graph.Solution{Paths: projected}
	if err := sol.Validate(ins); err != nil {
		return Result{}, fmt.Errorf("krsp: internal: vertex-split projection invalid: %v", err)
	}
	out := Result{
		Solution:   sol,
		Cost:       sol.Cost(ins.G),
		Delay:      sol.Delay(ins.G),
		LowerBound: res.LowerBound,
		Exact:      res.Exact,
		Stats:      res.Stats,
	}
	return out, nil
}
