package core

import (
	"errors"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
)

// onePlusEps returns (1+eps) as the exact rational the kernel itself uses,
// so the differential below tests the advertised bound, not a float echo.
func onePlusEps(eps float64) *big.Rat {
	r := new(big.Rat).SetFloat64(eps)
	return r.Add(r, big.NewRat(1, 1))
}

// TestPhase1ScaledMatchesClassicVerdicts is the differential contract of the
// scaled kernel: on every instance it must agree with the classic kernel on
// feasibility (same error classes, same Exact shortcut), keep the Lo/Hi
// sandwich, and report a lower bound within the ε guarantee —
// scaled.CLP ≤ classic.CLP ≤ (1+ε)·scaled.CLP.
func TestPhase1ScaledMatchesClassicVerdicts(t *testing.T) {
	const eps = 0.125
	factor := onePlusEps(eps)
	checked := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randInstance(r, 5+r.Intn(6), 3, 30, 30, 1+r.Intn(3))
		if feas, err := CheckFeasible(ins); err == nil && feas.MaxDisjoint >= ins.K {
			ins.Bound = feas.MinDelay + r.Int63n(25)
		} else {
			ins.Bound = 1 + r.Int63n(40)
		}
		classic, errC := Phase1(ins)
		scaled, errS := Phase1Scaled(ins, eps)
		if (errC == nil) != (errS == nil) {
			t.Logf("seed %d: verdicts differ: classic=%v scaled=%v", seed, errC, errS)
			return false
		}
		if errC != nil {
			// Same error class: both kernels run identical (non-target-stopped)
			// endpoint flows, so infeasibility reasons must match exactly.
			for _, sentinel := range []error{ErrNoKPaths, ErrDelayInfeasible} {
				if errors.Is(errC, sentinel) != errors.Is(errS, sentinel) {
					t.Logf("seed %d: error class differs: %v vs %v", seed, errC, errS)
					return false
				}
			}
			return true
		}
		checked++
		g := ins.G
		if classic.Exact != scaled.Exact {
			t.Logf("seed %d: Exact differs: %v vs %v", seed, classic.Exact, scaled.Exact)
			return false
		}
		if scaled.Lo.Delay(g) > ins.Bound {
			t.Logf("seed %d: scaled Lo infeasible: %d > %d", seed, scaled.Lo.Delay(g), ins.Bound)
			return false
		}
		if !scaled.Exact && scaled.Hi.Delay(g) <= ins.Bound {
			t.Logf("seed %d: scaled Hi does not violate the bound", seed)
			return false
		}
		// Lower-bound sandwich: the scaled kernel stops the dual ascent early,
		// so it can only undershoot the classic bound — and by at most the ε
		// factor (either the gap closed within ε·best, or λ* was certified).
		if scaled.CLP.Cmp(classic.CLP) > 0 {
			t.Logf("seed %d: scaled CLP %v above classic %v", seed, scaled.CLP, classic.CLP)
			return false
		}
		relaxed := new(big.Rat).Mul(factor, scaled.CLP)
		if classic.CLP.Cmp(relaxed) > 0 {
			t.Logf("seed %d: classic CLP %v outside (1+ε)·%v", seed, classic.CLP, scaled.CLP)
			return false
		}
		// Never more dual iterations than classic: early exit only removes work.
		if scaled.Stats.LambdaIterations > classic.Stats.LambdaIterations {
			t.Logf("seed %d: scaled ran MORE λ iterations (%d > %d)",
				seed, scaled.Stats.LambdaIterations, classic.Stats.LambdaIterations)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	if checked < 25 {
		t.Fatalf("only %d feasible differential checks ran", checked)
	}
}

func flowIDs(f flow.UnitFlow) []graph.EdgeID {
	ids := f.Edges.IDs()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestPhase1ScaledDeterministic: same instance, same eps → bitwise-identical
// result, across repeated runs and fresh big.Rat plumbing.
func TestPhase1ScaledDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		ins := randInstance(r, 8, 3, 25, 25, 2)
		feas, err := CheckFeasible(ins)
		if err != nil || feas.MaxDisjoint < ins.K {
			continue
		}
		ins.Bound = feas.MinDelay + 7
		a, errA := Phase1Scaled(ins, 0.125)
		b, errB := Phase1Scaled(ins, 0.125)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: nondeterministic verdict: %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.CLP.Cmp(b.CLP) != 0 || a.CLPCeil != b.CLPCeil || a.Exact != b.Exact ||
			a.Stats != b.Stats {
			t.Fatalf("trial %d: results drift: %+v vs %+v", trial, a, b)
		}
		loA, loB := flowIDs(a.Lo), flowIDs(b.Lo)
		hiA, hiB := flowIDs(a.Hi), flowIDs(b.Hi)
		for i := range loA {
			if loA[i] != loB[i] {
				t.Fatalf("trial %d: Lo flows differ", trial)
			}
		}
		for i := range hiA {
			if hiA[i] != hiB[i] {
				t.Fatalf("trial %d: Hi flows differ", trial)
			}
		}
	}
}

// TestSolveWithScaledKernel: the full pipeline accepts the kernel switch and
// still returns a feasible, valid solution with a populated lower bound.
func TestSolveWithScaledKernel(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{Phase1Kernel: "scaled"})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if res.Delay > ins.Bound {
		t.Fatalf("delay %d > bound %d", res.Delay, ins.Bound)
	}
	if res.Stats.Phase1.CLPDen == 0 {
		t.Fatal("scaled kernel left phase-1 stats empty")
	}

	r := rand.New(rand.NewSource(4242))
	solved := 0
	for trial := 0; trial < 30; trial++ {
		rins := randInstance(r, 6+r.Intn(5), 3, 20, 20, 1+r.Intn(2))
		feas, err := CheckFeasible(rins)
		if err != nil || feas.MaxDisjoint < rins.K {
			continue
		}
		rins.Bound = feas.MinDelay + r.Int63n(15)
		res, err := Solve(rins, Options{Phase1Kernel: "scaled", Phase1Eps: 0.25})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Solution.Validate(rins); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Delay > rins.Bound {
			t.Fatalf("trial %d: delay %d > bound %d", trial, res.Delay, rins.Bound)
		}
		solved++
	}
	if solved < 10 {
		t.Fatalf("only %d random solves ran", solved)
	}
}

// TestPhase1KernelRejectsUnknownName: a typo'd kernel name must fail loudly,
// not silently fall back to classic.
func TestPhase1KernelRejectsUnknownName(t *testing.T) {
	_, err := Solve(tradeoff(10), Options{Phase1Kernel: "turbo"})
	if err == nil || !strings.Contains(err.Error(), "unknown phase-1 kernel") {
		t.Fatalf("err = %v", err)
	}
}

// TestPhase1ScaledRejectsBadEps: ε must be strictly positive.
func TestPhase1ScaledRejectsBadEps(t *testing.T) {
	for _, eps := range []float64{0, -0.5} {
		if _, err := Phase1Scaled(tradeoff(10), eps); err == nil {
			t.Fatalf("eps=%g accepted", eps)
		}
	}
}

// TestPhase1ScaledExactShortcut mirrors TestPhase1ExactWhenCheapFits: when
// the unconstrained min-cost flow already fits the bound, both kernels take
// the identical exact path.
func TestPhase1ScaledExactShortcut(t *testing.T) {
	p1, err := Phase1Scaled(tradeoff(30), 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Exact || p1.Lo.Cost(tradeoff(30).G) != 5 {
		t.Fatalf("p1 = %+v", p1)
	}
}
