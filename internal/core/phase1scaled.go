package core

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/cancel"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/shortest"
)

// DefaultPhase1Eps is the scaled kernel's duality-gap tolerance when
// Options.Phase1Eps is unset: stop the λ search once the best dual lower
// bound is within 12.5% of the feasible endpoint's cost.
const DefaultPhase1Eps = 0.125

// phase1Kernel dispatches on Options.Phase1Kernel. The classic kernel is
// the default and stays bit-identical release to release; the scaled kernel
// is the ablatable Ashvinkumar–Bernstein–Karczmarz-style alternate.
func phase1Kernel(ins graph.Instance, opt Options, fm *obs.FlowMetrics, c *cancel.Canceller) (Phase1Result, error) {
	switch opt.Phase1Kernel {
	case "", "classic":
		return phase1(ins, fm, c, opt.Recorder)
	case "scaled":
		eps := opt.Phase1Eps
		if eps == 0 {
			eps = DefaultPhase1Eps
		}
		return phase1Scaled(ins, eps, fm, c, opt.Recorder)
	default:
		return Phase1Result{}, fmt.Errorf("krsp: unknown phase-1 kernel %q (want classic or scaled)", opt.Phase1Kernel)
	}
}

// Phase1Scaled is the scaled first-phase kernel behind
// Options.Phase1Kernel = "scaled", exposed for ablation tooling and
// benchmarks. Relative to Phase1 it keeps both endpoint flows exact (so
// feasibility verdicts — ErrNoKPaths, ErrDelayInfeasible, Exact — are
// identical), but restricts the interior of the λ search: augmentation
// Dijkstras stop at the sink with capped potential repair (exact per flow,
// see flow.KFlowSolver.MinCostKFlowTarget), and the search exits as soon as
// the duality gap c(Lo) − L closes within ε·L. The reported CLP is then a
// valid lower bound with C_LP ≤ (1+ε)·CLP, by weak duality plus
// C_LP ≤ c(Lo).
func Phase1Scaled(ins graph.Instance, eps float64) (Phase1Result, error) {
	if eps <= 0 {
		return Phase1Result{}, fmt.Errorf("krsp: phase-1 eps must be positive (got %g)", eps)
	}
	return phase1Scaled(ins, eps, nil, nil, nil)
}

func phase1Scaled(ins graph.Instance, eps float64, fm *obs.FlowMetrics, c *cancel.Canceller, r *rec.Recorder) (Phase1Result, error) {
	if eps <= 0 {
		return Phase1Result{}, fmt.Errorf("krsp: phase-1 eps must be positive (got %g)", eps)
	}
	if err := ins.Validate(); err != nil {
		return Phase1Result{}, err
	}
	g, s, t, k, bound := ins.G, ins.S, ins.T, ins.K, ins.Bound
	// float64 → exact dyadic rational: the gap test below stays in integer
	// arithmetic, so the kernel is deterministic for any eps value.
	epsRat := new(big.Rat).SetFloat64(eps)

	kf := flow.NewKFlowSolver(graph.NewCSR(g))
	kf.SetRecorder(r)
	// Endpoint flows use the full (non-target-stopped) rounds: their delay
	// values gate the Exact shortcut and the infeasibility verdict, and
	// target-stopping could tie-break onto a different optimal flow.
	fc, err := kf.MinCostKFlow(s, t, k, shortest.LinCost, fm, c)
	if err != nil {
		if errors.Is(err, cancel.ErrCancelled) {
			return Phase1Result{}, fmt.Errorf("%w: deadline hit during the min-cost endpoint flow", ErrNoProgress)
		}
		return Phase1Result{}, fmt.Errorf("%w: %v", ErrNoKPaths, err)
	}
	if fc.Delay(g) <= bound {
		clp := new(big.Rat).SetInt64(fc.Cost(g))
		return Phase1Result{Lo: fc, Hi: fc, Exact: true,
			CLP: clp, CLPCeil: fc.Cost(g),
			Stats: Phase1Stats{CLPNum: fc.Cost(g), CLPDen: 1}}, nil
	}
	fd, err := kf.MinCostKFlow(s, t, k, shortest.LinDelay, fm, c)
	if err != nil {
		if errors.Is(err, cancel.ErrCancelled) {
			return Phase1Result{}, fmt.Errorf("%w: deadline hit during the min-delay endpoint flow", ErrNoProgress)
		}
		return Phase1Result{}, fmt.Errorf("%w: %v", ErrNoKPaths, err)
	}
	if fd.Delay(g) > bound {
		return Phase1Result{}, fmt.Errorf("%w: min delay %d > bound %d",
			ErrDelayInfeasible, fd.Delay(g), bound)
	}

	hi, lo := fc, fd
	var st Phase1Stats
	degraded := false
	best := new(big.Rat).SetInt64(fc.Cost(g)) // L(0) = unconstrained min cost
	gap := new(big.Rat)
	tol := new(big.Rat)
	for iter := 0; iter < 256; iter++ {
		if c.Check() {
			degraded = true
			break
		}
		// ε early exit: C_LP ≤ c(Lo) always (Lo is a feasible integral
		// flow), so once c(Lo) − best ≤ ε·best the true optimum can improve
		// on the tracked dual by at most the tolerance — stop refining.
		if best.Sign() > 0 {
			gap.SetInt64(lo.Cost(g))
			gap.Sub(gap, best)
			tol.Mul(epsRat, best)
			if gap.Cmp(tol) <= 0 {
				break
			}
		}
		st.LambdaIterations++
		p := lo.Cost(g) - hi.Cost(g)
		q := hi.Delay(g) - lo.Delay(g)
		if q <= 0 {
			return Phase1Result{}, fmt.Errorf("krsp: internal: lagrangian invariant broken (q=%d)", q)
		}
		if p < 0 {
			p = 0
		}
		w := shortest.Combine(q, p)
		f, err := kf.MinCostKFlowTarget(s, t, k, shortest.LinCombine(q, p), fm, c)
		if err != nil {
			if errors.Is(err, cancel.ErrCancelled) {
				degraded = true
				break
			}
			return Phase1Result{}, fmt.Errorf("krsp: internal: %v", err)
		}
		wf := f.Weight(g, w)
		lval := new(big.Rat).SetFrac64(wf-p*bound, q)
		if lval.Cmp(best) > 0 {
			best = lval
		}
		r.Record(rec.KindLambdaIter, int64(st.LambdaIterations), p, q, wf)
		if r != nil {
			// Same convergence snapshot as the classic kernel — this gap is
			// the very quantity the ε exit above tests, so the recorded
			// trajectory shows exactly why (and when) the search stopped.
			lc := lo.Cost(g)
			dualFloor := ratFloorInt64(best)
			r.Record(rec.KindDualityGap, int64(st.LambdaIterations), lc, dualFloor, lc-dualFloor)
		}
		if wf == hi.Weight(g, w) || wf == lo.Weight(g, w) {
			break // λ* reached: f ties an endpoint
		}
		if f.Delay(g) <= bound {
			lo = f
		} else {
			hi = f
		}
	}
	res := Phase1Result{Lo: lo, Hi: hi, CLP: best, Degraded: degraded}
	num, den := best.Num(), best.Denom()
	st.CLPNum, st.CLPDen = num.Int64(), den.Int64()
	ceil := new(big.Int).Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	ceil.Div(ceil, den)
	res.CLPCeil = ceil.Int64()
	if res.CLPCeil < 1 {
		res.CLPCeil = 1
	}
	res.Stats = st
	return res, nil
}
