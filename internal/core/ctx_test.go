package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
)

// tradeoffCtx mirrors the in-package tradeoff fixture: two disjoint routes
// needed, cheap/slow vs pricey/fast plus a middle direct edge.
func tradeoffCtx(bound int64) graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: bound}
}

// TestSolveCtxBackgroundMatchesSolve: a non-cancellable context must be a
// bit-identical no-op wrapper.
func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	ins := tradeoffCtx(10)
	a, errA := core.Solve(ins, core.Options{})
	b, errB := core.SolveCtx(context.Background(), ins, core.Options{})
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if a.Cost != b.Cost || a.Delay != b.Delay || a.Stats.Iterations != b.Stats.Iterations ||
		b.Stats.Degraded {
		t.Fatalf("results diverge: %+v vs %+v", a, b)
	}
}

// TestSolveCtxPreCancelledNoProgress: with the tightest poll stride, a
// context cancelled before the solve starts must fail with ErrNoProgress —
// there is no feasible flow to degrade to.
func TestSolveCtxPreCancelledNoProgress(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	_, err := core.SolveCtx(ctx, tradeoffCtx(10), core.Options{PollEvery: 1})
	if !errors.Is(err, core.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

// TestSolveCtxDegradedOnTrip: an injected cancellation at the loop top must
// yield the feasible phase-1 endpoint with Degraded set — never an error,
// never a delay violation — and the degraded counter must record it.
func TestSolveCtxDegradedOnTrip(t *testing.T) {
	ins := tradeoffCtx(10) // non-exact: forces the cancellation loop
	reg := obs.New(&obs.ManualClock{})
	faults := fault.New(1)
	faults.Arm(fault.PointCancel, 1.0)
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	res, err := core.SolveCtx(ctx, ins, core.Options{Faults: faults, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatalf("expected degraded result, got %+v", res.Stats)
	}
	if res.Delay > ins.Bound {
		t.Fatalf("degraded result violates the delay bound: %d > %d", res.Delay, ins.Bound)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if res.LowerBound < 1 {
		t.Fatalf("degraded result lost its certificate: LB=%d", res.LowerBound)
	}
	if got := reg.SolverMetrics().Degraded.Value(); got != 1 {
		t.Fatalf("krsp_solve_degraded_total = %d, want 1", got)
	}
	if faults.Trips(fault.PointCancel) == 0 {
		t.Fatal("cancel point never consulted")
	}
}

// TestSolveCtxTripWithoutContextIsIgnored: tripping the canceller requires
// one to exist; with a Background context the fault is consulted but the
// solve runs to completion.
func TestSolveCtxTripWithoutContextIsIgnored(t *testing.T) {
	faults := fault.New(1)
	faults.Arm(fault.PointCancel, 1.0)
	res, err := core.SolveCtx(context.Background(), tradeoffCtx(10),
		core.Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded {
		t.Fatal("no canceller exists, nothing should degrade")
	}
	if res.Cost != 13 {
		t.Fatalf("cost = %d, want the full solve's 13", res.Cost)
	}
}

// TestSolveScaledCtxDegraded: the scaled wrapper inherits the anytime
// semantics.
func TestSolveScaledCtxDegraded(t *testing.T) {
	ins := obsInstance(t)
	faults := fault.New(3)
	faults.Arm(fault.PointCancel, 1.0)
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	res, err := core.SolveScaledCtx(ctx, ins, 0.3, 0.3, core.Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatalf("expected degraded, got %+v", res.Stats)
	}
	if res.Delay > ins.Bound {
		t.Fatalf("delay %d > bound %d", res.Delay, ins.Bound)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

// TestResidualUpdateFaultHeals: a permanently failing incremental residual
// update must not change the answer — every iteration heals by rebuilding.
func TestResidualUpdateFaultHeals(t *testing.T) {
	ins := tradeoffCtx(10)
	clean, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.New(5)
	faults.Arm(fault.PointResidualUpdate, 1.0)
	res, err := core.Solve(ins, core.Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != clean.Cost || res.Delay != clean.Delay {
		t.Fatalf("faulted solve diverged: (%d,%d) vs clean (%d,%d)",
			res.Cost, res.Delay, clean.Cost, clean.Delay)
	}
	if res.Stats.ResidualRebuilds == 0 {
		t.Fatal("no rebuilds recorded despite a permanently failing update")
	}
	if res.Stats.ResidualRebuilds != res.Stats.Iterations {
		t.Fatalf("rebuilds %d != iterations %d under a prob-1.0 fault",
			res.Stats.ResidualRebuilds, res.Stats.Iterations)
	}
}

// TestCycleSearchFaultFallsBack: a cycle search that always fails must
// degrade to the feasible phase-1 endpoint, not error or loop forever.
func TestCycleSearchFaultFallsBack(t *testing.T) {
	ins := tradeoffCtx(10)
	faults := fault.New(7)
	faults.Arm(fault.PointCycleSearch, 1.0)
	res, err := core.Solve(ins, core.Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FellBackToPhase1 {
		t.Fatalf("expected phase-1 fallback, got %+v", res.Stats)
	}
	if res.Delay > ins.Bound {
		t.Fatalf("delay %d > bound %d", res.Delay, ins.Bound)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}
