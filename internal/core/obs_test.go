package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// obsInstance builds the deterministic small instance the metric tests
// share. Must live in an external test package: gen imports core.
func obsInstance(t *testing.T) graph.Instance {
	t.Helper()
	ins := gen.ER(3, 24, 0.2, gen.DefaultWeights())
	ins.K = 2
	bounded, ok := gen.WithBound(ins, 1.15)
	if !ok {
		t.Fatal("obs test instance infeasible")
	}
	return bounded
}

// TestSolveMetricsMatchStats drives Solve with a live registry and checks
// the recorded counters against the returned Stats — the same consistency
// the krspd integration test asserts over HTTP.
func TestSolveMetricsMatchStats(t *testing.T) {
	reg := obs.New(&obs.ManualClock{})
	ins := obsInstance(t)
	res, err := core.Solve(ins, core.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	sm := reg.SolverMetrics()
	if got := sm.Solves.Value(); got != 1 {
		t.Fatalf("solves = %d, want 1", got)
	}
	if got := sm.Cancellations.Value(); got != int64(res.Stats.Iterations) {
		t.Fatalf("cancellations = %d, want %d", got, res.Stats.Iterations)
	}
	for i, c := range res.Stats.CyclesByType {
		if got := sm.Cycles[i].Value(); got != int64(c) {
			t.Fatalf("cycles[%d] = %d, want %d", i, got, c)
		}
	}
	if got := sm.CRefEscalations.Value(); got != int64(res.Stats.CRefEscalations) {
		t.Fatalf("cref escalations = %d, want %d", got, res.Stats.CRefEscalations)
	}
	if got := sm.LambdaIterations.Count(); got != 1 {
		t.Fatalf("lambda-iterations observations = %d, want 1", got)
	}
	// Phase spans: phase1, decompose and total fire on every solve; cancel
	// fires unless the exact shortcut skipped the loop.
	for _, p := range []obs.Phase{obs.PhasePhase1, obs.PhaseDecompose, obs.PhaseTotal} {
		if reg.PhaseHistogram(p).Count() == 0 {
			t.Fatalf("phase %v never observed", p)
		}
	}
	// Flow calls happen inside phase 1 on every instance.
	if reg.FlowMetrics().Calls.Value() == 0 {
		t.Fatal("no flow calls recorded")
	}
	// A second solve on the same registry accumulates.
	if _, err := core.Solve(ins, core.Options{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if got := sm.Solves.Value(); got != 2 {
		t.Fatalf("solves after second run = %d, want 2", got)
	}
}

// TestSolveScaledMetricsSingleCount proves the scaled wrapper counts as ONE
// solve even though it runs the pseudo-polynomial solve inside, and that it
// records the scale phase.
func TestSolveScaledMetricsSingleCount(t *testing.T) {
	reg := obs.New(&obs.ManualClock{})
	ins := obsInstance(t)
	if _, err := core.SolveScaled(ins, 0.5, 0.5, core.Options{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.SolverMetrics().Solves.Value(); got != 1 {
		t.Fatalf("solves = %d, want 1 (scaled inner run must not double-count)", got)
	}
	if reg.PhaseHistogram(obs.PhaseScale).Count() == 0 {
		t.Fatal("scale phase never observed")
	}
}

// TestSolveErrorCounted: infeasible instances count as solve + error.
func TestSolveErrorCounted(t *testing.T) {
	reg := obs.New(nil)
	ins := obsInstance(t)
	tight := ins
	tight.Bound = 0
	if _, err := core.Solve(tight, core.Options{Metrics: reg}); err == nil {
		t.Fatal("expected infeasibility error")
	}
	sm := reg.SolverMetrics()
	if sm.Solves.Value() != 1 || sm.Errors.Value() != 1 {
		t.Fatalf("solves/errors = %d/%d, want 1/1", sm.Solves.Value(), sm.Errors.Value())
	}
}

// TestSolveNilMetrics pins the no-op sink contract at the core layer: a
// nil registry must not change results (and must not crash anywhere down
// the stack).
func TestSolveNilMetrics(t *testing.T) {
	ins := obsInstance(t)
	with, err := core.Solve(ins, core.Options{Metrics: obs.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	without, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost != without.Cost || with.Delay != without.Delay {
		t.Fatalf("metrics changed the result: (%d,%d) vs (%d,%d)",
			with.Cost, with.Delay, without.Cost, without.Delay)
	}
}
