package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// recTradeoff mirrors the internal tradeoff instance: two disjoint routes
// needed, cheap/slow vs pricey/fast plus a middle direct edge. Bound 10 is
// feasible and forces cycle cancellation.
func recTradeoff(bound int64) graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 3, 1, 10)
	g.AddEdge(0, 2, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	g.AddEdge(0, 3, 3, 5)
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: bound}
}

// eventCounts tallies a recorded stream by kind.
func eventCounts(evs []rec.Event) map[rec.Kind]int {
	c := make(map[rec.Kind]int)
	for _, ev := range evs {
		c[ev.Kind]++
	}
	return c
}

// TestSolveRecordsTrajectory drives Solve with a live recorder and checks
// the event stream is consistent with the returned Stats: solve-start /
// solve-end bracket the stream, phase starts and ends pair up, and the
// per-iteration event counts match the Stats counters.
func TestSolveRecordsTrajectory(t *testing.T) {
	r := rec.New(new(obs.ManualClock), 1024)
	ins := recTradeoff(10)
	res, err := core.Solve(ins, core.Options{Recorder: r})
	if err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if evs[0].Kind != rec.KindSolveStart {
		t.Fatalf("first event = %s, want solve-start", evs[0].Kind)
	}
	if evs[0].Args != [4]int64{4, 5, 2, 10} {
		t.Fatalf("solve-start args = %v, want [4 5 2 10]", evs[0].Args)
	}
	last := evs[len(evs)-1]
	if last.Kind != rec.KindSolveEnd {
		t.Fatalf("last event = %s, want solve-end", last.Kind)
	}
	if last.Args[0] != res.Cost || last.Args[1] != res.Delay {
		t.Fatalf("solve-end cost/delay = %d/%d, want %d/%d",
			last.Args[0], last.Args[1], res.Cost, res.Delay)
	}
	if last.Args[2] != int64(res.Stats.Iterations) {
		t.Fatalf("solve-end iterations = %d, want %d", last.Args[2], res.Stats.Iterations)
	}

	counts := eventCounts(evs)
	if counts[rec.KindPhaseStart] != counts[rec.KindPhaseEnd] {
		t.Fatalf("phase-start %d != phase-end %d",
			counts[rec.KindPhaseStart], counts[rec.KindPhaseEnd])
	}
	if counts[rec.KindCancelStep] != res.Stats.Iterations {
		t.Fatalf("cancel-step events = %d, want Stats.Iterations %d",
			counts[rec.KindCancelStep], res.Stats.Iterations)
	}
	if counts[rec.KindCRefEscalate] != res.Stats.CRefEscalations {
		t.Fatalf("cref-escalate events = %d, want %d",
			counts[rec.KindCRefEscalate], res.Stats.CRefEscalations)
	}
	if counts[rec.KindLambdaIter] != res.Stats.Phase1.LambdaIterations {
		t.Fatalf("lambda-iter events = %d, want %d",
			counts[rec.KindLambdaIter], res.Stats.Phase1.LambdaIterations)
	}
	if counts[rec.KindDualityGap] != counts[rec.KindLambdaIter] {
		t.Fatalf("duality-gap events = %d, want one per lambda-iter %d",
			counts[rec.KindDualityGap], counts[rec.KindLambdaIter])
	}
	// Every applied cancellation maintains the residual incrementally (no
	// faults armed), so apply events match cancel steps.
	if counts[rec.KindResidualApply] != res.Stats.Iterations {
		t.Fatalf("residual-apply events = %d, want %d",
			counts[rec.KindResidualApply], res.Stats.Iterations)
	}
	if counts[rec.KindAugment] == 0 {
		t.Fatal("no augment events from the flow kernel")
	}
	// Duality-gap events must be non-increasing in gap within a solve
	// (best dual only improves) — the property the convergence table shows.
	prevIter := int64(-1)
	var prevGap int64
	for _, ev := range evs {
		if ev.Kind != rec.KindDualityGap {
			continue
		}
		if prevIter >= 0 && ev.Args[0] > prevIter && ev.Args[3] > prevGap {
			// gap can only shrink when lo improves or best grows; it can
			// stay equal, never grow (lo.Cost is non-increasing, best is
			// non-decreasing) — unless lo switched endpoints. Tolerate
			// equality, flag growth.
			t.Fatalf("duality gap grew: iter %d gap %d -> iter %d gap %d",
				prevIter, prevGap, ev.Args[0], ev.Args[3])
		}
		prevIter, prevGap = ev.Args[0], ev.Args[3]
	}
}

// TestSolveScaledKernelRecordsGap checks the scaled kernel records the same
// lambda-iter/duality-gap pairs the classic one does.
func TestSolveScaledKernelRecordsGap(t *testing.T) {
	r := rec.New(new(obs.ManualClock), 1024)
	ins := recTradeoff(10)
	res, err := core.Solve(ins, core.Options{Recorder: r, Phase1Kernel: "scaled"})
	if err != nil {
		t.Fatal(err)
	}
	counts := eventCounts(r.Events())
	if counts[rec.KindLambdaIter] != res.Stats.Phase1.LambdaIterations {
		t.Fatalf("lambda-iter events = %d, want %d",
			counts[rec.KindLambdaIter], res.Stats.Phase1.LambdaIterations)
	}
	if counts[rec.KindDualityGap] != counts[rec.KindLambdaIter] {
		t.Fatalf("duality-gap events = %d, want %d",
			counts[rec.KindDualityGap], counts[rec.KindLambdaIter])
	}
}

// TestDegradedSolveRecordsDecision arms the cancel fault point so the solve
// degrades deterministically, and checks the black-box stream carries the
// fault hit and the degradation decision — the exact events krspd's
// black-box dump exists to preserve.
func TestDegradedSolveRecordsDecision(t *testing.T) {
	r := rec.New(new(obs.ManualClock), 1024)
	faults := fault.New(1)
	faults.Arm(fault.PointCancel, 1.0)
	ins := recTradeoff(10)
	// The armed cancel point trips the real canceller, so the solve needs a
	// cancellable context (Background wires no cancellation machinery).
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	res, err := core.SolveCtx(ctx, ins, core.Options{Recorder: r, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatal("armed cancel fault should degrade the solve")
	}
	counts := eventCounts(r.Events())
	if counts[rec.KindFaultHit] == 0 {
		t.Fatal("no fault-hit event recorded")
	}
	if counts[rec.KindDegraded] != 1 {
		t.Fatalf("degraded events = %d, want 1", counts[rec.KindDegraded])
	}
	evs := r.Events()
	last := evs[len(evs)-1]
	if last.Kind != rec.KindSolveEnd || last.Args[3]&rec.FlagDegraded == 0 {
		t.Fatalf("last event = %s flags=%d, want solve-end with degraded flag",
			last.Kind, last.Args[3])
	}
}

// TestRecorderNeverChangesResults solves with and without a recorder and
// requires bit-identical results — recording is observation only.
func TestRecorderNeverChangesResults(t *testing.T) {
	ins := recTradeoff(10)
	plain, err := core.Solve(ins, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rec.New(new(obs.ManualClock), 64) // tiny ring: wraps during the solve
	recorded, err := core.Solve(ins, core.Options{Recorder: r})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != recorded.Cost || plain.Delay != recorded.Delay {
		t.Fatalf("recorder changed the result: %d/%d vs %d/%d",
			plain.Cost, plain.Delay, recorded.Cost, recorded.Delay)
	}
	if plain.Stats.Iterations != recorded.Stats.Iterations {
		t.Fatalf("recorder changed iterations: %d vs %d",
			plain.Stats.Iterations, recorded.Stats.Iterations)
	}
}
