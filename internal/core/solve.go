package core

import (
	"context"
	"fmt"

	"repro/internal/bicameral"
	"repro/internal/cancel"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/residual"
)

// Solve runs the paper's Algorithm 1 (Lemma 3): phase 1, then cycle
// cancellation with bicameral cycles until the delay bound holds. On
// feasible instances the output satisfies Delay ≤ D and, whenever the
// cap-respecting search sufficed (Stats.RelaxedCap == false), Cost ≤
// 2·C_OPT. Pseudo-polynomial in the weight magnitudes; use SolveScaled for
// the polynomial (1+ε₁, 2+ε₂) variant.
func Solve(ins graph.Instance, opt Options) (Result, error) {
	return SolveCtx(context.Background(), ins, opt)
}

// SolveCtx is Solve honoring ctx as a deadline for an ANYTIME solve: when
// ctx is done mid-run the solver returns the best delay-feasible solution
// reached so far with Stats.Degraded set, rather than an error. Degraded
// results always satisfy Delay ≤ D (the cancellation loop starts from the
// bound-violating endpoint, so the feasible phase-1 flow is the anytime
// answer until the loop completes) and still carry the phase-1 LowerBound
// certificate — only the 2·C_OPT cost guarantee is forfeited. ErrNoProgress
// is returned only when ctx fired before phase 1 produced any feasible
// k-flow at all. A Background (or otherwise non-cancellable) context makes
// SolveCtx identical to Solve: the poll sites cost one nil-check each.
func SolveCtx(ctx context.Context, ins graph.Instance, opt Options) (Result, error) {
	c := cancel.New(ctx, opt.PollEvery)
	defer c.Release()
	total := opt.Metrics.StartSpan(obs.PhaseTotal)
	res, err := solve(ins, opt, c)
	total.End()
	recordOutcome(opt.Metrics, res, err)
	return res, err
}

// recordOutcome folds one finished solve into the metric sink, reading
// everything from the returned Stats so the cancellation loop itself
// carries no record calls. Nil-safe; called once per exported entry point
// (Solve, SolveScaled — never by the internal solve, which would
// double-count the scaled inner run).
func recordOutcome(m *obs.Registry, res Result, err error) {
	sm := m.SolverMetrics()
	if sm == nil {
		return
	}
	sm.Solves.Inc()
	if err != nil {
		sm.Errors.Inc()
		return
	}
	if res.Exact {
		sm.Exact.Inc()
	}
	st := res.Stats
	sm.Cancellations.Add(int64(st.Iterations))
	for i, c := range st.CyclesByType {
		sm.Cycles[i].Add(int64(c))
	}
	sm.CRefEscalations.Add(int64(st.CRefEscalations))
	sm.BudgetEscalations.Add(int64(st.BudgetsTried))
	if st.RelaxedCap {
		sm.RelaxedCap.Inc()
	}
	if st.FellBackToPhase1 {
		sm.Phase1Fallbacks.Inc()
	}
	sm.LambdaIterations.Observe(int64(st.Phase1.LambdaIterations))
	sm.CancellationsPerSolve.Observe(int64(st.Iterations))
	sm.CycleCancelIters.Observe(int64(st.Iterations + st.CRefEscalations))
	if st.Degraded {
		sm.Degraded.Inc()
	}
	sm.ResidualRebuilds.Add(int64(st.ResidualRebuilds))
}

// solve is Solve without the outcome recording and total-phase span; the
// scaled path reuses it to avoid double-counting solves. c may be nil (no
// cancellation).
func solve(ins graph.Instance, opt Options, c *cancel.Canceller) (Result, error) {
	m := opt.Metrics
	r := opt.Recorder
	if ins.G != nil {
		r.Record(rec.KindSolveStart, int64(ins.G.NumNodes()), int64(ins.G.NumEdges()), int64(ins.K), ins.Bound)
	}
	ps := m.StartSpan(obs.PhasePhase1)
	r.Record(rec.KindPhaseStart, int64(obs.PhasePhase1), 0, 0, 0)
	p1, err := phase1Kernel(ins, opt, m.FlowMetrics(), c)
	ps.End()
	r.Record(rec.KindPhaseEnd, int64(obs.PhasePhase1), 0, 0, 0)
	if err != nil {
		return Result{}, err
	}
	g := ins.G
	if p1.Exact {
		return finish(ins, p1.Lo.Edges, p1, Stats{Phase1: p1.Stats}, true, m, r)
	}
	stats := Stats{Phase1: p1.Stats, Degraded: p1.Degraded}
	if opt.Phase1Only {
		chosen := p1.ChooseByPotential(g, ins.Bound)
		return finish(ins, chosen.Edges, p1, stats, false, m, r)
	}

	// Algorithm 1 proper: start from the bound-violating Lagrangian
	// endpoint (its cost is ≤ C_LP, establishing Lemma 11's induction) and
	// cancel bicameral cycles until the delay constraint holds. The
	// feasible endpoint Lo remains a safety net.
	cur := p1.Hi.Edges.Clone()
	curCost := p1.Hi.Cost(g)
	curDelay := p1.Hi.Delay(g)
	loCost := p1.Lo.Cost(g)

	// C_ref is the C_OPT stand-in: the LP lower bound, escalated on demand
	// but never beyond the known feasible cost (C_OPT ≤ c(Lo)).
	cRef := p1.CLPCeil
	if opt.OverestimateCRef {
		cRef = g.SumCost() + 1
	}
	if cRef <= curCost {
		cRef = curCost + 1
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 10*g.NumEdges()*ins.K + 1000
	}

	// Build the residual once and maintain it incrementally: applying a
	// candidate flips exactly the edges on its cycles (rg.Update), which is
	// bit-identical to rebuilding against the new solution but costs
	// O(cycle length) instead of O(m) per iteration.
	rg := residual.Build(g, cur)
	rg.SetRecorder(r)
	cs := m.StartSpan(obs.PhaseCancel)
	r.Record(rec.KindPhaseStart, int64(obs.PhaseCancel), 0, 0, 0)
	// degrade returns the anytime answer: the solutions this loop walks
	// through are delay-INfeasible until it exits, so the feasible phase-1
	// endpoint Lo is the best certified intermediate at every iteration. It
	// keeps the LowerBound certificate; only the cost factor is forfeited.
	degrade := func() (Result, error) {
		stats.Degraded = true
		r.Record(rec.KindDegraded, int64(obs.PhaseCancel), 0, 0, 0)
		cs.End()
		r.Record(rec.KindPhaseEnd, int64(obs.PhaseCancel), 0, 0, 0)
		return finish(ins, p1.Lo.Edges, p1, stats, false, m, r)
	}
	for curDelay > ins.Bound && stats.Iterations < maxIter {
		// Injected cancellation trips the real canceller so the whole
		// degraded path (kernel bail-outs included) is exercised, not
		// simulated. A nil canceller ignores the trip: there is no
		// cancellation machinery to exercise.
		if opt.Faults.Check(fault.PointCancel) != nil {
			r.Record(rec.KindFaultHit, int64(fault.PointCancel), 0, 0, 0)
			c.Trip()
		}
		if c.Check() {
			return degrade()
		}
		cap := cRef
		if opt.DisableCostCap {
			// Figure 1 ablation: “no cap” ≈ a cap beyond any cycle cost.
			cap = g.SumCost() + 1
		}
		params := bicameral.Params{
			DeltaD:  ins.Bound - curDelay,
			DeltaC:  cRef - curCost,
			CostCap: cap,
		}
		cand, bst, found := bicameral.Find(rg, params, bicameral.Options{
			Engine:      opt.Engine,
			FullSweep:   opt.FullSweep,
			Adversarial: opt.Adversarial,
			Workers:     opt.Workers,
			Metrics:     m,
			Recorder:    r,
			Cancel:      c,
			Faults:      opt.Faults,
		})
		stats.BudgetsTried += bst.BudgetsTried
		if c.Stopped() {
			// A cancelled Find's not-found is no certificate (see
			// bicameral.Options.Cancel); don't escalate C_ref on it.
			return degrade()
		}
		if !found {
			// Lemma 9 guarantees a negative-delay cycle exists (the
			// instance is feasible), so the cap must be too tight: C_ref
			// underestimates C_OPT. Escalate toward the known upper bound.
			if cRef < loCost {
				stats.CRefEscalations++
				old := cRef
				cRef *= 2
				if cRef > loCost {
					cRef = loCost
				}
				r.Record(rec.KindCRefEscalate, old, cRef, 0, 0)
				continue
			}
			// Cap already at the feasible cost; last resort is the
			// relaxed-cap fallback, unless disabled.
			if bst.Fallback != nil && !opt.NoRelaxedCap {
				stats.RelaxedCap = true
				cand = *bst.Fallback
				r.Record(rec.KindRelaxedCap, cand.Cost, cand.Delay, 0, 0)
			} else {
				stats.FellBackToPhase1 = true
				r.Record(rec.KindFallback, rec.FallbackSearchExhausted, 0, 0, 0)
				cs.End()
				r.Record(rec.KindPhaseEnd, int64(obs.PhaseCancel), 0, 0, 0)
				return finish(ins, p1.Lo.Edges, p1, stats, false, m, r)
			}
		}
		next, err := rg.ApplyAll(cand.Cycles)
		if err != nil {
			cs.End()
			return Result{}, fmt.Errorf("krsp: internal: cycle application failed: %v", err)
		}
		// Incremental residual maintenance is an optimization, never a
		// correctness dependency: an update failure (genuine or injected)
		// heals by rebuilding from the new solution, which is what Update is
		// bit-identical to.
		if ferr := opt.Faults.Check(fault.PointResidualUpdate); ferr != nil {
			r.Record(rec.KindFaultHit, int64(fault.PointResidualUpdate), 0, 0, 0)
			rg = residual.Build(g, next)
			rg.SetRecorder(r)
			stats.ResidualRebuilds++
			r.Record(rec.KindResidualRebuild, int64(stats.Iterations), 0, 0, 0)
		} else if err := rg.Update(cand.Cycles); err != nil {
			rg = residual.Build(g, next)
			rg.SetRecorder(r)
			stats.ResidualRebuilds++
			r.Record(rec.KindResidualRebuild, int64(stats.Iterations), 0, 0, 0)
		}
		if opt.CollectTrace {
			stats.Trace = append(stats.Trace, IterationRecord{
				Cost: curCost, Delay: curDelay, CRef: cRef,
				CycleCost: cand.Cost, CycleDelay: cand.Delay,
				Type: int(cand.Type),
			})
		}
		cur = next
		curCost += cand.Cost   //lint:allow weightovf solution aggregate over MaxWeight-capped edges; ≤ m·MaxWeight
		curDelay += cand.Delay //lint:allow weightovf solution aggregate over MaxWeight-capped edges; ≤ m·MaxWeight
		if r != nil {
			edges := 0
			for _, cyc := range cand.Cycles {
				edges += len(cyc.Edges)
			}
			r.Record(rec.KindCancelStep, int64(edges), cand.Cost, cand.Delay, int64(cand.Type))
		}
		stats.Iterations++
		if cand.Type >= 0 && int(cand.Type) < 3 {
			stats.CyclesByType[cand.Type]++
		}
		if curCost >= cRef && curDelay > ins.Bound {
			// Keep ΔC positive for the next round.
			stats.CRefEscalations++
			old := cRef
			cRef = curCost + 1
			if cRef < p1.CLPCeil {
				cRef = p1.CLPCeil
			}
			r.Record(rec.KindCRefEscalate, old, cRef, 0, 0)
		}
	}
	cs.End()
	r.Record(rec.KindPhaseEnd, int64(obs.PhaseCancel), 0, 0, 0)
	if curDelay > ins.Bound {
		// Iteration cap hit: fall back to the feasible endpoint.
		stats.FellBackToPhase1 = true
		r.Record(rec.KindFallback, rec.FallbackIterCap, 0, 0, 0)
		return finish(ins, p1.Lo.Edges, p1, stats, false, m, r)
	}
	// Return the cheaper of the cancelled solution and the feasible
	// endpoint (both meet the bound).
	if loCost < curCost && !opt.NoSafetyNet {
		stats.FellBackToPhase1 = true
		r.Record(rec.KindFallback, rec.FallbackCheaper, 0, 0, 0)
		return finish(ins, p1.Lo.Edges, p1, stats, false, m, r)
	}
	return finish(ins, cur, p1, stats, false, m, r)
}

// finish decomposes a feasible flow into paths and assembles the Result.
// Flow cycles left over by decomposition are dropped: with nonnegative
// weights that never increases cost or delay.
func finish(ins graph.Instance, edges graph.EdgeSet, p1 Phase1Result, stats Stats, exact bool, m *obs.Registry, r *rec.Recorder) (Result, error) {
	ds := m.StartSpan(obs.PhaseDecompose)
	defer ds.End()
	r.Record(rec.KindPhaseStart, int64(obs.PhaseDecompose), 0, 0, 0)
	paths, _, err := flow.Decompose(ins.G, edges, ins.S, ins.T, ins.K)
	r.Record(rec.KindPhaseEnd, int64(obs.PhaseDecompose), 0, 0, 0)
	if err != nil {
		return Result{}, fmt.Errorf("krsp: internal: decompose: %v", err)
	}
	sol := graph.Solution{Paths: paths}
	res := Result{
		Solution:   sol,
		Cost:       sol.Cost(ins.G),
		Delay:      sol.Delay(ins.G),
		LowerBound: p1.CLPCeil,
		Exact:      exact,
		Stats:      stats,
	}
	var flags int64
	if stats.Degraded {
		flags |= rec.FlagDegraded
	}
	if exact {
		flags |= rec.FlagExact
	}
	if stats.RelaxedCap {
		flags |= rec.FlagRelaxedCap
	}
	if stats.FellBackToPhase1 {
		flags |= rec.FlagFellBack
	}
	r.Record(rec.KindSolveEnd, res.Cost, res.Delay, int64(stats.Iterations), flags)
	return res, nil
}
