package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestStressRandomTopologies hammers Solve across every generator at
// moderate sizes, asserting only the hard contracts: valid disjoint paths,
// delay bound respected, cost certified against the LP lower bound (≤ 2×
// whenever the cap was respected). Skipped under -short.
func TestStressRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(2026))
	mks := []func(seed int64) graph.Instance{
		func(s int64) graph.Instance { return gen.ER(s, 18+int(s%20), 0.2, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Grid(s, 4+int(s%3), 5, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Layered(s, 4, 4, 0.5, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.Geometric(s, 20, 0.35, gen.DefaultWeights()) },
		func(s int64) graph.Instance { return gen.ISP(s, 8, 2, gen.DefaultWeights()) },
	}
	solved := 0
	for round := 0; round < 60; round++ {
		mk := mks[round%len(mks)]
		ins := mk(int64(round))
		ins.K = 1 + r.Intn(3)
		slack := 1.05 + r.Float64()*1.5
		bounded, ok := gen.WithBound(ins, slack)
		if !ok {
			continue
		}
		res, err := core.Solve(bounded, core.Options{})
		if err != nil {
			t.Fatalf("round %d (%s): %v", round, bounded.Name, err)
		}
		if err := res.Solution.Validate(bounded); err != nil {
			t.Fatalf("round %d (%s): %v", round, bounded.Name, err)
		}
		if res.Delay > bounded.Bound {
			t.Fatalf("round %d (%s): delay %d > %d", round, bounded.Name, res.Delay, bounded.Bound)
		}
		if !res.Stats.RelaxedCap && res.Cost > 2*res.LowerBound {
			t.Fatalf("round %d (%s): cost %d > 2·LB %d", round, bounded.Name, res.Cost, res.LowerBound)
		}
		solved++
	}
	if solved < 30 {
		t.Fatalf("only %d/60 rounds produced feasible instances", solved)
	}
}

// TestStressVertexDisjoint does the same for the vertex-disjoint variant.
func TestStressVertexDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	solved := 0
	for seed := int64(0); seed < 25; seed++ {
		ins := gen.ER(seed+500, 16, 0.3, gen.DefaultWeights())
		ins.K = 2
		bounded, ok := gen.WithBound(ins, 1.5)
		if !ok {
			continue
		}
		res, err := core.SolveVertexDisjoint(bounded, core.Options{})
		if err != nil {
			continue // vertex-disjointness can be genuinely infeasible
		}
		seen := map[graph.NodeID]bool{}
		for _, p := range res.Solution.Paths {
			nodes := p.Nodes(bounded.G)
			for _, v := range nodes[1 : len(nodes)-1] {
				if seen[v] {
					t.Fatalf("seed %d: interior vertex %d shared", seed, v)
				}
				seen[v] = true
			}
		}
		solved++
	}
	if solved < 10 {
		t.Fatalf("only %d/25 vertex-disjoint rounds solved", solved)
	}
}
