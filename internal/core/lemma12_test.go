package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLemma12Monotonicity verifies the paper's Lemma 12 empirically on
// every traced cancellation: across iterations with a fixed C_ref, either
// r = ΔD/ΔC strictly increases, or it stays equal while ΔD strictly
// shrinks in magnitude. (C_ref escalations reset the frame, so only
// consecutive records sharing a CRef are compared.)
func TestLemma12Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randInstance(r, 5+r.Intn(5), 3, 10, 10, 1+r.Intn(2))
		feas, err := CheckFeasible(withBigBound(ins))
		if err != nil || feas.MaxDisjoint < ins.K {
			return true
		}
		ins.Bound = feas.MinDelay + r.Int63n(12)
		res, err := Solve(ins, Options{CollectTrace: true})
		if err != nil {
			return false
		}
		recs := res.Stats.Trace
		for i := 1; i < len(recs); i++ {
			prev, cur := recs[i-1], recs[i]
			if prev.CRef != cur.CRef {
				continue // escalation resets the frame
			}
			// r_i = (D − delay_i) / (CRef − cost_i) as exact rationals.
			ri := big.NewRat(ins.Bound-prev.Delay, prev.CRef-prev.Cost)
			rj := big.NewRat(ins.Bound-cur.Delay, cur.CRef-cur.Cost)
			switch rj.Cmp(ri) {
			case 1: // strictly increased: clause 2
			case 0: // equal: clause 1 requires |ΔD| to shrink
				if !(ins.Bound-cur.Delay > ins.Bound-prev.Delay) {
					return false
				}
			default:
				return false // r decreased: Lemma 12 violated
			}
		}
		// Every traced cycle must also satisfy W < 0 or the boundary
		// type-1 condition in its own frame.
		for _, rec := range recs {
			dd := ins.Bound - rec.Delay
			dc := rec.CRef - rec.Cost
			w := dc*rec.CycleDelay - dd*rec.CycleCost
			if w > 0 {
				return false
			}
			if w == 0 && rec.CycleDelay >= 0 {
				return false // boundary cycles must still reduce delay
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOffByDefault guards the zero-allocation default.
func TestTraceOffByDefault(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace != nil {
		t.Fatal("trace collected without CollectTrace")
	}
	res, err = Solve(ins, Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations > 0 && len(res.Stats.Trace) != res.Stats.Iterations {
		t.Fatalf("trace len %d vs iterations %d", len(res.Stats.Trace), res.Stats.Iterations)
	}
}
