package core

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bicameral"
	"repro/internal/exact"
	"repro/internal/graph"
)

// tradeoff: two disjoint routes needed; cheap/slow vs pricey/fast plus a
// middle direct edge.
func tradeoff(bound int64) graph.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, 1, 10) // e0 cheap slow
	g.AddEdge(1, 3, 1, 10) // e1
	g.AddEdge(0, 2, 5, 1)  // e2 pricey fast
	g.AddEdge(2, 3, 5, 1)  // e3
	g.AddEdge(0, 3, 3, 5)  // e4 direct middle
	return graph.Instance{G: g, S: 0, T: 3, K: 2, Bound: bound}
}

func randInstance(r *rand.Rand, n, deg int, maxC, maxD int64, k int) graph.Instance {
	g := graph.New(n)
	for i := 0; i < deg*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), r.Int63n(maxC+1), r.Int63n(maxD+1))
		}
	}
	return graph.Instance{G: g, S: 0, T: graph.NodeID(n - 1), K: k}
}

func TestCheckFeasible(t *testing.T) {
	ins := tradeoff(25)
	f, err := CheckFeasible(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !f.OK || f.MaxDisjoint != 3 || f.MinDelay != 7 {
		t.Fatalf("feasibility = %+v", f)
	}
	ins.Bound = 6
	f, _ = CheckFeasible(ins)
	if f.OK {
		t.Fatal("bound 6 must be infeasible")
	}
	ins.Bound = 25
	ins.K = 4
	f, _ = CheckFeasible(ins)
	if f.OK || f.MaxDisjoint != 3 {
		t.Fatalf("k=4 must fail: %+v", f)
	}
}

func TestPhase1ExactWhenCheapFits(t *testing.T) {
	ins := tradeoff(30) // cheap+direct: cost 5 delay 25 — min-cost flow fits
	p1, err := Phase1(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Exact {
		t.Fatalf("expected exact, got %+v", p1)
	}
	if p1.Lo.Cost(ins.G) != 5 {
		t.Fatalf("cost %d", p1.Lo.Cost(ins.G))
	}
}

func TestPhase1SandwichAndPotential(t *testing.T) {
	ins := tradeoff(10) // min-cost flow (5,25) violates; optimum is (13,7)
	p1, err := Phase1(ins)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Exact {
		t.Fatal("should not be exact")
	}
	g := ins.G
	if p1.Lo.Delay(g) > 10 || p1.Hi.Delay(g) <= 10 {
		t.Fatalf("sandwich broken: lo %d hi %d", p1.Lo.Delay(g), p1.Hi.Delay(g))
	}
	// C_LP ≤ C_OPT = 13.
	if p1.CLPCeil > 13 || p1.CLPCeil < 1 {
		t.Fatalf("CLPCeil = %d", p1.CLPCeil)
	}
	// Lemma 5: chosen flow has c/C_LP + d/D ≤ 2.
	chosen := p1.ChooseByPotential(g, ins.Bound)
	phi := new(big.Rat).Quo(new(big.Rat).SetInt64(chosen.Cost(g)), p1.CLP)
	phi.Add(phi, big.NewRat(chosen.Delay(g), ins.Bound))
	if phi.Cmp(big.NewRat(2, 1)) > 0 {
		t.Fatalf("potential %v > 2", phi)
	}
}

func TestPhase1Errors(t *testing.T) {
	ins := tradeoff(25)
	ins.K = 4
	if _, err := Phase1(ins); !errors.Is(err, ErrNoKPaths) {
		t.Fatalf("err = %v", err)
	}
	ins.K = 2
	ins.Bound = 3
	if _, err := Phase1(ins); !errors.Is(err, ErrDelayInfeasible) {
		t.Fatalf("err = %v", err)
	}
	ins.Bound = -1
	if _, err := Phase1(ins); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveExactCase(t *testing.T) {
	ins := tradeoff(30)
	res, err := Solve(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Cost != 5 || res.Delay > 30 {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCancellationCase(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 10 {
		t.Fatalf("delay %d > 10", res.Delay)
	}
	// OPT = 13 (pricey pair + direct); 2·OPT = 26.
	if res.Cost > 26 {
		t.Fatalf("cost %d > 2·OPT", res.Cost)
	}
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if res.LowerBound > 13 {
		t.Fatalf("lower bound %d exceeds OPT", res.LowerBound)
	}
}

func TestSolveInfeasible(t *testing.T) {
	ins := tradeoff(3)
	if _, err := Solve(ins, Options{}); !errors.Is(err, ErrDelayInfeasible) {
		t.Fatalf("err = %v", err)
	}
	ins = tradeoff(30)
	ins.K = 4
	if _, err := Solve(ins, Options{}); !errors.Is(err, ErrNoKPaths) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolvePhase1Only(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{Phase1Only: true})
	if err != nil {
		t.Fatal(err)
	}
	// Phase1Only returns the potential-minimizing endpoint, which may
	// violate the delay bound (that is its (2,2)-style contract).
	if err := res.Solution.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 0 {
		t.Fatal("phase1-only must not cancel cycles")
	}
}

// TestSolveGuarantees is the E1 core property: on random feasible
// instances, Solve's delay obeys the bound and its cost is ≤ 2·OPT
// (cap-respecting runs), with LowerBound ≤ OPT.
func TestSolveGuarantees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randInstance(r, 4+r.Intn(4), 3, 8, 8, 1+r.Intn(2))
		feas, err := CheckFeasible(ins)
		if err != nil || !feas.OK {
			// Choose a workable bound if possible.
			if err != nil || feas.MaxDisjoint < ins.K {
				return true
			}
			ins.Bound = feas.MinDelay + r.Int63n(10)
		} else {
			ins.Bound = feas.MinDelay + r.Int63n(15)
		}
		res, err := Solve(ins, Options{})
		if err != nil {
			return false // instance is feasible by construction
		}
		if res.Solution.Validate(ins) != nil {
			return false
		}
		if res.Delay > ins.Bound {
			return false
		}
		opt, err := exact.BruteForce(ins, 60)
		if err != nil {
			return false
		}
		if res.LowerBound > opt.Cost {
			return false
		}
		if !res.Stats.RelaxedCap && res.Cost > 2*opt.Cost {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveLPEngineAgrees runs the LP-based bicameral engine end to end on
// tiny instances.
func TestSolveLPEngineAgrees(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{Engine: bicameral.EngineLP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 10 || res.Cost > 26 {
		t.Fatalf("lp engine res = %+v", res)
	}
}

func TestSolveScaledGuarantees(t *testing.T) {
	for _, eps := range []float64{1.0, 0.5} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			ins := randInstance(r, 4+r.Intn(3), 3, 20, 20, 1+r.Intn(2))
			feas, err := CheckFeasible(ins)
			if err != nil || feas.MaxDisjoint < ins.K {
				return true
			}
			ins.Bound = feas.MinDelay + r.Int63n(20)
			res, err := SolveScaled(ins, eps, eps, Options{})
			if err != nil {
				return false
			}
			if res.Solution.Validate(ins) != nil {
				return false
			}
			// Delay ≤ (1+ε)·D.
			if float64(res.Delay) > (1+eps)*float64(ins.Bound)+1e-9 {
				return false
			}
			opt, err := exact.BruteForce(ins, 60)
			if err != nil {
				return false
			}
			// Cost ≤ (2+ε)·OPT for cap-respecting runs (the 2·OPT proof
			// compares against the scaled optimum; the ε term absorbs the
			// rounding).
			if !res.Stats.RelaxedCap && opt.Cost > 0 &&
				float64(res.Cost) > (2+eps)*float64(opt.Cost)+1e-9 {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
	}
}

func TestSolveScaledRejectsBadEps(t *testing.T) {
	ins := tradeoff(10)
	if _, err := SolveScaled(ins, 0, 1, Options{}); err == nil {
		t.Fatal("eps1=0 accepted")
	}
	if _, err := SolveScaled(ins, 1, -2, Options{}); err == nil {
		t.Fatal("eps2<0 accepted")
	}
}

func TestSolveScaledExactShortcut(t *testing.T) {
	ins := tradeoff(30)
	res, err := SolveScaled(ins, 0.5, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Cost != 5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations == 0 {
		t.Fatal("cancellation loop should have run")
	}
	total := res.Stats.CyclesByType[0] + res.Stats.CyclesByType[1] + res.Stats.CyclesByType[2]
	if !res.Stats.RelaxedCap && total != res.Stats.Iterations {
		t.Fatalf("type counts %v != iterations %d", res.Stats.CyclesByType, res.Stats.Iterations)
	}
	if res.Stats.Phase1.LambdaIterations == 0 {
		t.Fatal("phase1 stats missing")
	}
}

func TestSolveFullSweepOption(t *testing.T) {
	ins := tradeoff(10)
	res, err := Solve(ins, Options{FullSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > 10 {
		t.Fatalf("delay %d", res.Delay)
	}
}
