GO ?= go

.PHONY: check vet fmt-check lint conc-audit bce-audit build test race fuzz-smoke bench-smoke bench-large bench bench-guard trace-smoke cluster-smoke clean

# The full CI gate: static checks (vet, gofmt, krsplint, the concurrency
# audit, the BCE ratchet),
# build, race-enabled tests, a short fuzz smoke over the robustness harness,
# a one-shot benchmark smoke run (catches benchmarks that panic or regress
# to failure), the N=5k large-tier smoke, the allocation guard on the
# flagship benches, the flight-recorder round trip, and the 3-node cluster
# failover smoke.
check: vet fmt-check lint conc-audit bce-audit build race fuzz-smoke bench-smoke bench-large bench-guard trace-smoke cluster-smoke

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail if any file needs reformatting.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Project-invariant static analysis (internal/lint): the per-package checks
# (determinism, panic-freedom, zero-alloc hot paths, wall-clock bans,
# overflow guards) plus the whole-module ones (//krsp: contract
# verification, metric catalogue, fault seams, stale suppressions). Exits
# nonzero on any unsuppressed diagnostic. Results are cached under
# .lintcache keyed on source hashes — a no-change rerun replays instantly
# and reports fresh vs warm time — and every run leaves a SARIF 2.1.0
# artifact at krsplint.sarif for CI upload.
lint:
	$(GO) run ./cmd/krsplint -cache .lintcache -sarif-out krsplint.sarif ./...

# Concurrency contracts in isolation (DESIGN.md §15): the lock-set checker
# (//krsp:guardedby + //krsp:locked), goroutine-lifecycle verification
# (//krsp:detached) and the atomics-discipline audit over the whole module,
# with their own SARIF artifact. The full `lint` gate runs these too; this
# target gives CI a focused artifact and a fast re-run after touching
# concurrent code.
conc-audit:
	$(GO) run ./cmd/krsplint -analyzers lockcheck,gorolife,atomicmix -sarif-out conc-audit.sarif ./...

# Bounds-check-elimination ratchet: build with -d=ssa/check_bce and fail if
# any //krsp:inbounds kernel carries more compiler bounds checks than the
# committed BCE_BASELINE.json records. After a genuine improvement, tighten
# the ratchet with `go run ./cmd/krsplint -bce -bce-update`.
bce-audit:
	$(GO) run ./cmd/krsplint -bce

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -count=1 defeats the test cache: the race gate must actually re-execute
# the concurrent suites (goroutine-leak guards, cache churn) every run, not
# replay a cached pass from an earlier non-race-relevant change.
race:
	$(GO) test -race -count=1 ./...

# Short coverage-guided fuzz: SolveCtx (random instances, poll strides and
# fault seeds must never panic or violate the delay bound) and the lint
# directive parsers (arbitrary comment text must parse fully or error,
# never half-succeed).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSolveCtx$$' -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzDirectiveParser$$' -fuzztime 5s ./internal/lint/

# -short skips the large tier (bench_large_test.go); bench-large covers it.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# One-shot N=5k smoke of the large tier: phase-1 classic vs scaled plus the
# end-to-end solve. The full N=5k/20k/50k sweep is
#   go test -run '^$$' -bench 'Phase1(Classic|Scaled)N|SolveLargeN' -benchmem .
bench-large:
	$(GO) test -run '^$$' -bench 'Phase1ClassicN5k|Phase1ScaledN5k|SolveLargeN5k' -benchtime 1x .

# Regenerate the hot-path benchmark snapshot. Reports are numbered; the
# newest BENCH_*.json is the baseline the guard compares against.
bench:
	$(GO) run ./cmd/krspbench -out BENCH_4.json

# Newest snapshot on disk (lexicographic; fine for single-digit revisions).
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))

# Zero-alloc contracts: core.Solve with Options.Metrics unset must not
# allocate above the newest baseline, SolveCtx with a live Canceller must
# match it, the fingerprint+cache miss path must add nothing on top, and
# the CSR phase-1 kernels must hold their alloc counts flat. -baseline
# prints the full ns/B/allocs delta table and fails on any allocs/op
# regression.
bench-guard:
	$(GO) run ./cmd/krspbench -run SolveN60K3,SolveCtxN60K3,SolveN60K3CacheMiss,Phase1ClassicN5k,Phase1ScaledN5k -baseline $(BENCH_BASELINE)

# Flight-recorder round trip (DESIGN.md §13): generate an instance, solve
# it with the recorder armed (krsp -flight), and render the dump with
# krsptrace as both the human report and the Chrome trace_event export.
# Fails when any stage cannot parse the previous one's output.
trace-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/krspgen -n 40 -k 3 -slack 1.15 > $$tmp/ins.krsp && \
	$(GO) run ./cmd/krsp -quiet -flight $$tmp/flight.jsonl $$tmp/ins.krsp > /dev/null && \
	$(GO) run ./cmd/krsptrace $$tmp/flight.jsonl > $$tmp/report.txt && \
	$(GO) run ./cmd/krsptrace -chrome $$tmp/chrome.json $$tmp/flight.jsonl && \
	grep -q "phase timeline" $$tmp/report.txt && \
	grep -q "duality-gap convergence" $$tmp/report.txt && \
	echo "trace-smoke: solve -> dump -> krsptrace round trip ok ($$(wc -l < $$tmp/flight.jsonl | tr -d ' ') trace lines)"; \
	status=$$?; rm -rf $$tmp; exit $$status

# 3-node cluster failover smoke (DESIGN.md §14): boot three krspd nodes on
# loopback, drive 100 open-loop requests through node 1, SIGTERM node 3
# mid-run, and assert zero non-2xx (failover must not lose requests), at
# least one proxied response (the ring actually sharded), and at least one
# cache hit (the fingerprint cache actually served).
cluster-smoke:
	@tmp=$$(mktemp -d); status=1; \
	$(GO) build -o $$tmp/krspd ./cmd/krspd && \
	$(GO) build -o $$tmp/krspload ./cmd/krspload && \
	members=127.0.0.1:7141,127.0.0.1:7142,127.0.0.1:7143; \
	for port in 7141 7142 7143; do \
	  $$tmp/krspd -addr 127.0.0.1:$$port -cluster $$members -self 127.0.0.1:$$port \
	    -cache 64 -max-inflight 0 2> $$tmp/krspd-$$port.log & \
	  eval pid$$port=$$!; \
	done; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -sf http://127.0.0.1:7141/healthz > /dev/null 2>&1 && \
	     curl -sf http://127.0.0.1:7142/healthz > /dev/null 2>&1 && \
	     curl -sf http://127.0.0.1:7143/healthz > /dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.1; \
	done; \
	if [ $$up -eq 1 ]; then \
	  $$tmp/krspload -targets http://127.0.0.1:7141 -n 100 -qps 200 -distinct 80 \
	    -kill-after 60 -kill-pid $$pid7143 \
	    -max-non2xx 0 -min-proxied 1 -min-cache-hit 1; status=$$?; \
	else \
	  echo "cluster-smoke: nodes failed to start"; cat $$tmp/krspd-*.log; \
	fi; \
	kill $$pid7141 $$pid7142 $$pid7143 2> /dev/null; wait 2> /dev/null; \
	[ $$status -eq 0 ] && echo "cluster-smoke: 100 requests, mid-run node kill, zero lost ok"; \
	rm -rf $$tmp; exit $$status

clean:
	$(GO) clean ./...
	rm -rf .lintcache krsplint.sarif conc-audit.sarif
