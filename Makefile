GO ?= go

.PHONY: check vet fmt-check lint build test race bench-smoke bench clean

# The full CI gate: static checks (vet, gofmt, krsplint), build, race-enabled
# tests, and a one-shot benchmark smoke run (catches benchmarks that panic or
# regress to failure).
check: vet fmt-check lint build race bench-smoke

vet:
	$(GO) vet ./...

# gofmt cleanliness: fail if any file needs reformatting.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Project-invariant static analysis (internal/lint): determinism,
# panic-freedom, zero-alloc hot paths, wall-clock bans, overflow guards.
# Exits nonzero on any unsuppressed diagnostic.
lint:
	$(GO) run ./cmd/krsplint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the hot-path benchmark snapshot.
bench:
	$(GO) run ./cmd/krspbench -out BENCH_1.json

clean:
	$(GO) clean ./...
