GO ?= go

.PHONY: check vet build test race bench-smoke bench clean

# The full CI gate: static checks, build, race-enabled tests, and a one-shot
# benchmark smoke run (catches benchmarks that panic or regress to failure).
check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the hot-path benchmark snapshot.
bench:
	$(GO) run ./cmd/krspbench -out BENCH_1.json

clean:
	$(GO) clean ./...
